//! The memo cache: canonical-netlist-hash → finished result payload.
//!
//! Same durability protocol as the corpus checkpoint
//! (`crates/bench/src/corpus.rs`): a JSONL file opened in append mode,
//! one `sync_data` per line, and a torn-tail repair on open — if the
//! process died mid-append (SIGKILL, power loss, the `cache.torn`
//! fault), the last line has no trailing newline; open detects that,
//! terminates it, and the parse pass skips the mangled record. Every
//! entry that *was* fully appended survives any crash, so a restarted
//! daemon serves byte-identical cache hits.
//!
//! ## What is cached
//!
//! Only **proved-optimal** results. A proved placement is a pure
//! function of the canonical netlist and the result-shaping options —
//! independent of the deadline, job count, and engine-bisection flags —
//! so the key deliberately excludes those speed-only knobs. Degraded
//! (deadline-expired) and hierarchical results depend on the budget
//! that produced them and are never cached.
//!
//! ## Key
//!
//! FNV-1a 64 over the canonical SPICE rendering of the parsed circuit
//! (`spice::write`, which normalizes whitespace, card order, and net
//! spelling) concatenated with the result-shaping options — including
//! the full effective objective parameterization, since a different
//! objective or height geometry is a different result. 16 hex digits,
//! same shape as `clip_corpus::work_hash`.
//!
//! ## Size bound
//!
//! An optional entry cap turns the cache into a FIFO: when an insert
//! pushes past the cap, the oldest entry (by insertion order) is
//! evicted from memory. The backing file keeps growing by appends until
//! the dead weight reaches the live size, then a **compaction** rewrites
//! it: live entries stream to `<path>.tmp`, the tmp file is synced and
//! atomically renamed over the original. A crash at any point leaves
//! either the old file (possibly with a stale tmp, removed on next
//! open) or the complete new one — never a half-compacted cache.

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use clip_layout::jsonio::{self, Json};

use crate::protocol::SynthSpec;

/// Hashes the canonical deck + result-shaping options into a 16-hex-digit
/// cache key.
pub fn canonical_key(canonical_deck: &str, spec: &SynthSpec) -> String {
    // The *effective* objective name, so the legacy `height` flag and
    // its modern spelling `"objective":"width-height"` share an entry.
    let objective = spec.objective.clone().unwrap_or_else(|| {
        if spec.height {
            "width-height".into()
        } else {
            "width".into()
        }
    });
    let defaults = clip_core::ObjectiveSpec::default();
    let opts = format!(
        "|rows={};auto={};max_rows={};stacking={};obj={};pitch={};diff={};rail={};ir={};crit={}",
        spec.rows,
        spec.auto_rows,
        spec.max_rows,
        spec.stacking,
        objective,
        spec.track_pitch.unwrap_or(defaults.track_pitch),
        spec.diffusion_overhead
            .unwrap_or(defaults.diffusion_overhead),
        spec.rail_overhead.unwrap_or(defaults.rail_overhead),
        spec.interrow_weight.unwrap_or(defaults.interrow_weight),
        spec.critical.join(","),
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for bytes in [canonical_deck.as_bytes(), opts.as_bytes()] {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// A durable memo cache: in-memory map plus its append-only JSONL file,
/// optionally bounded to a maximum entry count (FIFO eviction).
#[derive(Debug)]
pub struct MemoCache {
    path: PathBuf,
    file: File,
    entries: HashMap<String, Json>,
    /// Live hashes in insertion order; front = oldest = next evicted.
    order: VecDeque<String>,
    /// Entry cap (None → unbounded).
    cap: Option<usize>,
    /// Lines in the backing file, live or dead — drives compaction.
    file_lines: usize,
    /// True when open found and repaired a torn final line.
    repaired_torn_tail: bool,
}

impl MemoCache {
    /// Opens an unbounded cache at `path` — see
    /// [`MemoCache::open_capped`].
    ///
    /// # Errors
    ///
    /// Only real I/O failures (permissions, disk). A missing file is
    /// created; a mangled file is loaded best-effort.
    pub fn open(path: &Path) -> io::Result<MemoCache> {
        MemoCache::open_capped(path, None)
    }

    /// Opens (creating if absent) the cache at `path`, repairing a torn
    /// tail, removing any stale compaction temp file left by a crash,
    /// and loading every intact record. With `cap` set, the oldest
    /// entries beyond the cap are evicted on load (and the file
    /// compacted), so a reopened cache holds exactly what the bounded
    /// in-memory cache held.
    ///
    /// Records are one JSON object per line: `{"hash":"…","result":{…}}`.
    /// Unparseable lines are skipped, not fatal — a torn or corrupt
    /// record costs one cache miss, never the daemon.
    ///
    /// # Errors
    ///
    /// Only real I/O failures (permissions, disk). A missing file is
    /// created; a mangled file is loaded best-effort.
    pub fn open_capped(path: &Path, cap: Option<usize>) -> io::Result<MemoCache> {
        // A tmp file here means a compaction died before its rename; the
        // original is still authoritative.
        let _ = std::fs::remove_file(tmp_path(path));
        let mut text = String::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_string(&mut text)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut repaired = false;
        if !text.is_empty() && !text.ends_with('\n') {
            // Torn tail: the writer died mid-append. Terminate the line
            // so future appends start clean; the parse below skips it.
            file.write_all(b"\n")?;
            file.sync_data()?;
            repaired = true;
        }
        let mut entries = HashMap::new();
        let mut order = VecDeque::new();
        let mut file_lines = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            file_lines += 1;
            let Ok(v) = jsonio::parse(line) else { continue };
            let (Some(hash), Some(result)) = (
                v.get("hash").and_then(Json::as_str).map(str::to_owned),
                v.get("result"),
            ) else {
                continue;
            };
            if entries.insert(hash.clone(), result.clone()).is_none() {
                order.push_back(hash);
            }
        }
        let mut cache = MemoCache {
            path: path.to_owned(),
            file,
            entries,
            order,
            cap,
            file_lines,
            repaired_torn_tail: repaired,
        };
        let evicted = cache.evict_to_cap();
        if evicted > 0 {
            cache.compact()?;
        }
        Ok(cache)
    }

    /// Drops oldest entries until the cap holds. Returns how many went.
    fn evict_to_cap(&mut self) -> usize {
        let Some(cap) = self.cap else { return 0 };
        let mut evicted = 0;
        while self.entries.len() > cap {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.entries.remove(&oldest);
            evicted += 1;
        }
        evicted
    }

    /// Rewrites the backing file to exactly the live entries: stream to
    /// `<path>.tmp`, sync, atomically rename over the original, reopen
    /// the append handle. A crash mid-compaction leaves the original
    /// file plus a stale tmp (removed on next open); a crash after the
    /// rename leaves the complete new file — no in-between state exists.
    fn compact(&mut self) -> io::Result<()> {
        let tmp = tmp_path(&self.path);
        let mut out = File::create(&tmp)?;
        for hash in &self.order {
            let Some(result) = self.entries.get(hash) else {
                continue;
            };
            out.write_all(entry_line(hash, result).as_bytes())?;
        }
        out.sync_data()?;
        drop(out);
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.file_lines = self.entries.len();
        Ok(())
    }

    /// The cached result payload for `hash`, if present.
    pub fn get(&self, hash: &str) -> Option<&Json> {
        self.entries.get(hash)
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when [`MemoCache::open`] repaired a torn final line.
    pub fn repaired_torn_tail(&self) -> bool {
        self.repaired_torn_tail
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The entry cap (None → unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.cap
    }

    /// Appends `result` under `hash`: one JSONL line, synced to disk
    /// before the insert is visible in memory — a crash after `insert`
    /// returns can never lose the entry.
    ///
    /// `torn` simulates the crash *during* the append (the `cache.torn`
    /// fault site): half the line is written with no newline and the
    /// entry is **not** inserted in memory, exactly the state a real
    /// mid-write SIGKILL leaves behind.
    ///
    /// # Errors
    ///
    /// I/O failures writing or syncing the backing file.
    pub fn insert(&mut self, hash: &str, result: &Json, torn: bool) -> io::Result<()> {
        let line = entry_line(hash, result);
        if torn {
            let half = &line.as_bytes()[..line.len() / 2];
            self.file.write_all(half)?;
            self.file.sync_data()?;
            return Ok(());
        }
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        self.file_lines += 1;
        if self
            .entries
            .insert(hash.to_owned(), result.clone())
            .is_none()
        {
            self.order.push_back(hash.to_owned());
        }
        self.evict_to_cap();
        // Compact once the dead weight (evicted or superseded lines)
        // reaches the live size — amortized O(1) per insert.
        if let Some(cap) = self.cap {
            if self.file_lines >= cap.max(1) * 2 && self.file_lines > self.entries.len() {
                self.compact()?;
            }
        }
        Ok(())
    }

    /// Flushes the backing file (shutdown path; appends are already
    /// synced per line, so this is belt and braces).
    ///
    /// # Errors
    ///
    /// I/O failures syncing the backing file.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// The compaction temp file: same directory (so the rename stays on one
/// filesystem), deterministic name (so a crashed compaction's leftover
/// is recognized and removed on the next open).
fn tmp_path(path: &Path) -> PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".tmp");
    PathBuf::from(p)
}

fn entry_line(hash: &str, result: &Json) -> String {
    format!(
        "{}\n",
        Json::obj([
            ("hash", Json::Str(hash.to_owned())),
            ("result", result.clone()),
        ])
        .to_compact()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Source;

    fn spec() -> SynthSpec {
        SynthSpec {
            source: Source::Cell("nand2".into()),
            rows: 2,
            auto_rows: false,
            max_rows: 4,
            hier: false,
            stacking: false,
            height: false,
            objective: None,
            track_pitch: None,
            diffusion_overhead: None,
            rail_overhead: None,
            interrow_weight: None,
            critical: Vec::new(),
            pareto: false,
            limit_ms: 60_000,
            jobs: None,
            no_theories: false,
            classic_search: false,
            no_cache: false,
            faults: Vec::new(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("clip_serve_cache_{name}_{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn key_depends_on_deck_and_shaping_options_only() {
        let base = spec();
        let k = canonical_key("* deck\n", &base);
        assert_eq!(k.len(), 16);
        assert_eq!(k, canonical_key("* deck\n", &base));
        // Speed-only knobs don't move the key…
        let mut speedy = base.clone();
        speedy.no_theories = true;
        speedy.classic_search = true;
        speedy.jobs = Some(8);
        speedy.limit_ms = 1;
        assert_eq!(k, canonical_key("* deck\n", &speedy));
        // …result-shaping ones do.
        let mut taller = base.clone();
        taller.rows = 3;
        assert_ne!(k, canonical_key("* deck\n", &taller));
        assert_ne!(k, canonical_key("* other deck\n", &base));
        // Objective parameters are result-shaping too.
        let mut hw = base.clone();
        hw.objective = Some("height-width".into());
        assert_ne!(k, canonical_key("* deck\n", &hw));
        let mut pitched = base.clone();
        pitched.track_pitch = Some(2);
        assert_ne!(k, canonical_key("* deck\n", &pitched));
        let mut crit = base.clone();
        crit.critical = vec!["z".into()];
        assert_ne!(k, canonical_key("* deck\n", &crit));
        // The legacy `height` flag and its modern spelling share a key.
        let mut legacy = base.clone();
        legacy.height = true;
        let mut modern = base.clone();
        modern.objective = Some("width-height".into());
        assert_eq!(
            canonical_key("* deck\n", &legacy),
            canonical_key("* deck\n", &modern)
        );
        // Explicitly spelling out a default matches omitting it.
        let mut explicit = base.clone();
        explicit.track_pitch = Some(1);
        assert_eq!(k, canonical_key("* deck\n", &explicit));
    }

    #[test]
    fn round_trips_across_reopen() {
        let path = tmp("roundtrip");
        let payload = Json::obj([("width", Json::Int(4)), ("cell", Json::Str("x".into()))]);
        {
            let mut c = MemoCache::open(&path).unwrap();
            assert!(c.is_empty());
            c.insert("abc123", &payload, false).unwrap();
            assert_eq!(c.get("abc123"), Some(&payload));
        }
        let c = MemoCache::open(&path).unwrap();
        assert!(!c.repaired_torn_tail());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("abc123"), Some(&payload));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_repaired_and_intact_entries_survive() {
        let path = tmp("torn");
        let payload = Json::obj([("width", Json::Int(7))]);
        {
            let mut c = MemoCache::open(&path).unwrap();
            c.insert("good", &payload, false).unwrap();
            // Simulated mid-append crash: half a line, no newline, and
            // the entry never becomes visible.
            c.insert("lost", &payload, true).unwrap();
            assert!(c.get("lost").is_none());
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.ends_with('\n'), "fixture must end torn");
        {
            let mut c = MemoCache::open(&path).unwrap();
            assert!(c.repaired_torn_tail());
            assert_eq!(c.len(), 1, "only the intact entry loads");
            assert_eq!(c.get("good"), Some(&payload));
            // Appends after repair land on a clean newline boundary.
            c.insert("next", &payload, false).unwrap();
        }
        let c = MemoCache::open(&path).unwrap();
        assert!(!c.repaired_torn_tail());
        assert_eq!(c.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    fn payload(n: i64) -> Json {
        Json::obj([("width", Json::Int(n))])
    }

    #[test]
    fn capped_cache_evicts_oldest_first_and_survives_reopen() {
        let path = tmp("evict");
        {
            let mut c = MemoCache::open_capped(&path, Some(2)).unwrap();
            assert_eq!(c.capacity(), Some(2));
            for i in 0..3 {
                c.insert(&format!("k{i}"), &payload(i), false).unwrap();
            }
            assert_eq!(c.len(), 2);
            assert!(c.get("k0").is_none(), "oldest entry is evicted");
            assert!(c.get("k1").is_some() && c.get("k2").is_some());
        }
        // A reopen under the same cap reconstructs the identical state:
        // newest entries win, in file order.
        let c = MemoCache::open_capped(&path, Some(2)).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.get("k0").is_none());
        assert!(c.get("k1").is_some() && c.get("k2").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_bounds_the_backing_file() {
        let path = tmp("compact");
        let mut c = MemoCache::open_capped(&path, Some(2)).unwrap();
        for i in 0..20 {
            c.insert(&format!("k{i}"), &payload(i), false).unwrap();
        }
        assert_eq!(c.len(), 2);
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert!(
            lines < 4,
            "file must be compacted to about the live size, found {lines} lines"
        );
        // The survivors are the newest inserts and still round-trip.
        let c = MemoCache::open_capped(&path, Some(2)).unwrap();
        assert_eq!(c.get("k18"), Some(&payload(18)));
        assert_eq!(c.get("k19"), Some(&payload(19)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_kill_during_compaction_leaves_a_recoverable_cache() {
        let path = tmp("killed_compaction");
        {
            let mut c = MemoCache::open(&path).unwrap();
            c.insert("good", &payload(1), false).unwrap();
            // The crash: a half-written compaction tmp file AND a torn
            // append on the original — the worst state a SIGKILL during
            // compact-then-append can leave behind.
            c.insert("lost", &payload(2), true).unwrap();
        }
        let tmp_file = super::tmp_path(&path);
        std::fs::write(&tmp_file, "{\"hash\":\"half").unwrap();
        {
            let c = MemoCache::open_capped(&path, Some(8)).unwrap();
            assert!(c.repaired_torn_tail());
            assert_eq!(c.len(), 1, "only the intact entry survives");
            assert_eq!(c.get("good"), Some(&payload(1)));
            assert!(
                !tmp_file.exists(),
                "the stale compaction tmp is removed on open"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
