//! The memo cache: canonical-netlist-hash → finished result payload.
//!
//! Same durability protocol as the corpus checkpoint
//! (`crates/bench/src/corpus.rs`): a JSONL file opened in append mode,
//! one `sync_data` per line, and a torn-tail repair on open — if the
//! process died mid-append (SIGKILL, power loss, the `cache.torn`
//! fault), the last line has no trailing newline; open detects that,
//! terminates it, and the parse pass skips the mangled record. Every
//! entry that *was* fully appended survives any crash, so a restarted
//! daemon serves byte-identical cache hits.
//!
//! ## What is cached
//!
//! Only **proved-optimal** results. A proved placement is a pure
//! function of the canonical netlist and the result-shaping options —
//! independent of the deadline, job count, and engine-bisection flags —
//! so the key deliberately excludes those speed-only knobs. Degraded
//! (deadline-expired) and hierarchical results depend on the budget
//! that produced them and are never cached.
//!
//! ## Key
//!
//! FNV-1a 64 over the canonical SPICE rendering of the parsed circuit
//! (`spice::write`, which normalizes whitespace, card order, and net
//! spelling) concatenated with the result-shaping options. 16 hex
//! digits, same shape as `clip_corpus::work_hash`.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use clip_layout::jsonio::{self, Json};

use crate::protocol::SynthSpec;

/// Hashes the canonical deck + result-shaping options into a 16-hex-digit
/// cache key.
pub fn canonical_key(canonical_deck: &str, spec: &SynthSpec) -> String {
    let opts = format!(
        "|rows={};auto={};max_rows={};stacking={};height={}",
        spec.rows, spec.auto_rows, spec.max_rows, spec.stacking, spec.height
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for bytes in [canonical_deck.as_bytes(), opts.as_bytes()] {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// A durable memo cache: in-memory map plus its append-only JSONL file.
#[derive(Debug)]
pub struct MemoCache {
    path: PathBuf,
    file: File,
    entries: HashMap<String, Json>,
    /// True when open found and repaired a torn final line.
    repaired_torn_tail: bool,
}

impl MemoCache {
    /// Opens (creating if absent) the cache at `path`, repairing a torn
    /// tail and loading every intact record.
    ///
    /// Records are one JSON object per line: `{"hash":"…","result":{…}}`.
    /// Unparseable lines are skipped, not fatal — a torn or corrupt
    /// record costs one cache miss, never the daemon.
    ///
    /// # Errors
    ///
    /// Only real I/O failures (permissions, disk). A missing file is
    /// created; a mangled file is loaded best-effort.
    pub fn open(path: &Path) -> io::Result<MemoCache> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_string(&mut text)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut repaired = false;
        if !text.is_empty() && !text.ends_with('\n') {
            // Torn tail: the writer died mid-append. Terminate the line
            // so future appends start clean; the parse below skips it.
            file.write_all(b"\n")?;
            file.sync_data()?;
            repaired = true;
        }
        let mut entries = HashMap::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(v) = jsonio::parse(line) else { continue };
            let (Some(hash), Some(result)) = (
                v.get("hash").and_then(Json::as_str).map(str::to_owned),
                v.get("result"),
            ) else {
                continue;
            };
            entries.insert(hash, result.clone());
        }
        Ok(MemoCache {
            path: path.to_owned(),
            file,
            entries,
            repaired_torn_tail: repaired,
        })
    }

    /// The cached result payload for `hash`, if present.
    pub fn get(&self, hash: &str) -> Option<&Json> {
        self.entries.get(hash)
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when [`MemoCache::open`] repaired a torn final line.
    pub fn repaired_torn_tail(&self) -> bool {
        self.repaired_torn_tail
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends `result` under `hash`: one JSONL line, synced to disk
    /// before the insert is visible in memory — a crash after `insert`
    /// returns can never lose the entry.
    ///
    /// `torn` simulates the crash *during* the append (the `cache.torn`
    /// fault site): half the line is written with no newline and the
    /// entry is **not** inserted in memory, exactly the state a real
    /// mid-write SIGKILL leaves behind.
    ///
    /// # Errors
    ///
    /// I/O failures writing or syncing the backing file.
    pub fn insert(&mut self, hash: &str, result: &Json, torn: bool) -> io::Result<()> {
        let line = format!(
            "{}\n",
            Json::obj([
                ("hash", Json::Str(hash.to_owned())),
                ("result", result.clone()),
            ])
            .to_compact()
        );
        if torn {
            let half = &line.as_bytes()[..line.len() / 2];
            self.file.write_all(half)?;
            self.file.sync_data()?;
            return Ok(());
        }
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        self.entries.insert(hash.to_owned(), result.clone());
        Ok(())
    }

    /// Flushes the backing file (shutdown path; appends are already
    /// synced per line, so this is belt and braces).
    ///
    /// # Errors
    ///
    /// I/O failures syncing the backing file.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Source;

    fn spec() -> SynthSpec {
        SynthSpec {
            source: Source::Cell("nand2".into()),
            rows: 2,
            auto_rows: false,
            max_rows: 4,
            hier: false,
            stacking: false,
            height: false,
            limit_ms: 60_000,
            jobs: None,
            no_theories: false,
            classic_search: false,
            no_cache: false,
            faults: Vec::new(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("clip_serve_cache_{name}_{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn key_depends_on_deck_and_shaping_options_only() {
        let base = spec();
        let k = canonical_key("* deck\n", &base);
        assert_eq!(k.len(), 16);
        assert_eq!(k, canonical_key("* deck\n", &base));
        // Speed-only knobs don't move the key…
        let mut speedy = base.clone();
        speedy.no_theories = true;
        speedy.classic_search = true;
        speedy.jobs = Some(8);
        speedy.limit_ms = 1;
        assert_eq!(k, canonical_key("* deck\n", &speedy));
        // …result-shaping ones do.
        let mut taller = base.clone();
        taller.rows = 3;
        assert_ne!(k, canonical_key("* deck\n", &taller));
        assert_ne!(k, canonical_key("* other deck\n", &base));
    }

    #[test]
    fn round_trips_across_reopen() {
        let path = tmp("roundtrip");
        let payload = Json::obj([("width", Json::Int(4)), ("cell", Json::Str("x".into()))]);
        {
            let mut c = MemoCache::open(&path).unwrap();
            assert!(c.is_empty());
            c.insert("abc123", &payload, false).unwrap();
            assert_eq!(c.get("abc123"), Some(&payload));
        }
        let c = MemoCache::open(&path).unwrap();
        assert!(!c.repaired_torn_tail());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("abc123"), Some(&payload));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_repaired_and_intact_entries_survive() {
        let path = tmp("torn");
        let payload = Json::obj([("width", Json::Int(7))]);
        {
            let mut c = MemoCache::open(&path).unwrap();
            c.insert("good", &payload, false).unwrap();
            // Simulated mid-append crash: half a line, no newline, and
            // the entry never becomes visible.
            c.insert("lost", &payload, true).unwrap();
            assert!(c.get("lost").is_none());
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.ends_with('\n'), "fixture must end torn");
        {
            let mut c = MemoCache::open(&path).unwrap();
            assert!(c.repaired_torn_tail());
            assert_eq!(c.len(), 1, "only the intact entry loads");
            assert_eq!(c.get("good"), Some(&payload));
            // Appends after repair land on a clean newline boundary.
            c.insert("next", &payload, false).unwrap();
        }
        let c = MemoCache::open(&path).unwrap();
        assert!(!c.repaired_torn_tail());
        assert_eq!(c.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
