//! SIGTERM/SIGINT → one atomic flag the accept loop polls.
//!
//! The only thing the handler does is store to a static `AtomicBool` —
//! the canonical async-signal-safe action. The daemon's accept loop
//! and worker drain poll [`requested`]; nothing blocks forever (reads
//! and receives all use short timeouts), so a signal turns into a
//! graceful drain within one poll interval.
//!
//! This is the one spot in the workspace that needs FFI (registering a
//! handler has no std API), so the crate is `deny(unsafe_code)` with a
//! single narrowly-scoped allow here, rather than `forbid` like its
//! siblings. On non-Unix targets [`install`] is a no-op and shutdown
//! comes from the `{"op":"shutdown"}` request instead.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATE: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM or SIGINT has been delivered (after [`install`]).
pub fn requested() -> bool {
    TERMINATE.load(Ordering::SeqCst)
}

/// Test hook: pretend a signal arrived.
pub fn request() {
    TERMINATE.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM/SIGINT handlers (idempotent).
pub fn install() {
    imp::install();
}

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;
    use std::sync::Once;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type Handler = extern "C" fn(i32);

    extern "C" {
        // POSIX `signal(2)`, provided by the libc std already links.
        // The return value (previous handler) is a pointer we ignore.
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_terminate(_sig: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        super::TERMINATE.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            // SAFETY: `signal` matches its POSIX prototype; the handler
            // is an `extern "C" fn(i32)` that only stores an atomic.
            #[allow(unsafe_code)]
            unsafe {
                signal(SIGTERM, on_terminate);
                signal(SIGINT, on_terminate);
            }
        });
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_the_test_hook_sets_the_flag() {
        install();
        install();
        request();
        assert!(requested());
    }
}
