//! Minimal property-based testing for the hermetic CLIP workspace.
//!
//! A deliberately small stand-in for crates-io `proptest`, built on
//! [`clip_rng`]: composable generators ([`Gen`]), a [`proptest_lite!`]
//! macro that turns `fn name(x in gen, ..) { body }` items into `#[test]`
//! functions, deterministic per-case seeds, and replay of regression
//! seeds recorded in `.proptest-regressions`-style files.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** On failure the harness reports the case seed and a
//!   `Debug` dump of every generated input; re-run with
//!   `CLIP_PROPTEST_SEED=<seed> CLIP_PROPTEST_CASES=1` to replay.
//! * **Deterministic by default.** Case seeds derive from the test name,
//!   so CI runs are reproducible; set `CLIP_PROPTEST_SEED` to explore a
//!   different stream.
//! * **`prop_assume!` skips rather than resamples**: a failed assumption
//!   ends the case successfully instead of drawing a replacement, so
//!   heavily-filtered properties should raise `cases:` accordingly.
//!
//! Environment knobs:
//!
//! * `CLIP_PROPTEST_CASES` — overrides every suite's case count;
//! * `CLIP_PROPTEST_SEED` — overrides the base stream seed.
//!
//! # Example
//!
//! ```
//! use clip_proptest::{gens, proptest_lite};
//!
//! proptest_lite! {
//!     cases: 64;
//!
//!     fn addition_commutes(a in gens::int(0..1000u32), b in gens::int(0..1000u32)) {
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;

pub use clip_rng::Rng;

/// Panic payload marker used by [`prop_assume!`] to signal a skipped case.
#[doc(hidden)]
pub const REJECT_MARKER: &str = "__clip_proptest_reject__";

/// A composable generator: a sampling function from RNG to value.
///
/// Cheap to clone (the closure is reference-counted), so generators can
/// be reused across [`one_of`](gens::one_of) arms and recursive grammars.
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Rng) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            f: Rc::clone(&self.f),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a sampling function.
    pub fn new(f: impl Fn(&mut Rng) -> T + 'static) -> Self {
        Gen { f: Rc::new(f) }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut Rng) -> T {
        (self.f)(rng)
    }

    /// Applies `f` to every generated value.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |rng| f(self.sample(rng)))
    }

    /// Feeds every generated value into a dependent generator.
    pub fn flat_map<U: 'static>(self, f: impl Fn(T) -> Gen<U> + 'static) -> Gen<U> {
        Gen::new(move |rng| f(self.sample(rng)).sample(rng))
    }

    /// Vectors of `self` with a length drawn from `len`.
    pub fn vec(self, len: std::ops::RangeInclusive<usize>) -> Gen<Vec<T>> {
        Gen::new(move |rng| {
            let n = rng.gen_range(len.clone());
            (0..n).map(|_| self.sample(rng)).collect()
        })
    }

    /// Fixed-size arrays of `self`.
    pub fn array<const N: usize>(self) -> Gen<[T; N]> {
        Gen::new(move |rng| std::array::from_fn(|_| self.sample(rng)))
    }
}

/// The built-in generator constructors.
pub mod gens {
    use super::{Gen, Rng};
    use clip_rng::{SampleRange, UniformInt};

    /// A uniform integer from a range (`lo..hi` or `lo..=hi`).
    pub fn int<T, R>(range: R) -> Gen<T>
    where
        T: UniformInt + 'static,
        R: SampleRange<T> + Clone + 'static,
    {
        Gen::new(move |rng| rng.gen_range(range.clone()))
    }

    /// A fair boolean.
    pub fn bool() -> Gen<bool> {
        Gen::new(|rng| rng.gen_bool(0.5))
    }

    /// Any 64-bit value.
    pub fn any_u64() -> Gen<u64> {
        Gen::new(Rng::next_u64)
    }

    /// Always `value`.
    pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
        Gen::new(move |_| value.clone())
    }

    /// A uniformly chosen arm. Panics if `arms` is empty.
    pub fn one_of<T: 'static>(arms: Vec<Gen<T>>) -> Gen<T> {
        assert!(!arms.is_empty(), "one_of needs at least one arm");
        Gen::new(move |rng| {
            let i = rng.gen_range(0..arms.len());
            arms[i].sample(rng)
        })
    }

    /// A recursive grammar: starts from `leaf` and wraps it with `branch`
    /// up to `depth` times, choosing uniformly at each level between
    /// stopping (a leaf) and recursing. The proptest `prop_recursive`
    /// analogue for simple tree generators.
    pub fn recursive<T: 'static>(
        depth: u32,
        leaf: Gen<T>,
        branch: impl Fn(Gen<T>) -> Gen<T>,
    ) -> Gen<T> {
        let mut g = leaf.clone();
        for _ in 0..depth {
            g = one_of(vec![leaf.clone(), branch(g)]);
        }
        g
    }
}

/// Per-suite configuration, resolved from defaults plus the environment.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed for the deterministic case stream.
    pub seed: u64,
}

impl Config {
    /// A config with `default_cases`, unless `CLIP_PROPTEST_CASES` or
    /// `CLIP_PROPTEST_SEED` override it.
    pub fn from_env(default_cases: u32) -> Self {
        let cases = std::env::var("CLIP_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_cases);
        let seed = std::env::var("CLIP_PROPTEST_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(DEFAULT_SEED);
        Config { cases, seed }
    }
}

/// Default base seed for the deterministic case streams.
pub const DEFAULT_SEED: u64 = 0x0C11_9057_0000_2547;

fn parse_seed(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// Reads regression seeds from a proptest-style regressions file.
///
/// Recognized lines look like `cc <hex-digest> # comment`; the first 16
/// hex digits of the digest become the replay seed. Missing files yield
/// an empty list (same as proptest: the file appears on first failure).
pub fn regression_seeds(manifest_dir: &str, relative: Option<&str>) -> Vec<u64> {
    let Some(rel) = relative else {
        return Vec::new();
    };
    let path = std::path::Path::new(manifest_dir).join(rel);
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex: String = rest
                .chars()
                .take_while(char::is_ascii_hexdigit)
                .take(16)
                .collect();
            u64::from_str_radix(&hex, 16).ok()
        })
        .collect()
}

/// Runs one property: regression seeds first, then `cfg.cases` fresh
/// cases on a deterministic per-test stream.
///
/// The case closure receives the RNG and a debug-string sink it should
/// fill with a `Debug` rendering of the generated inputs; on panic the
/// harness reports the test name, case index, seed, and that dump, then
/// resumes the panic. A panic whose payload contains [`REJECT_MARKER`]
/// (from [`prop_assume!`]) counts as a skip, not a failure.
pub fn run(cfg: &Config, name: &str, regressions: &[u64], case: impl Fn(&mut Rng, &mut String)) {
    let mut skipped = 0u32;
    let mut stream = cfg.seed ^ fnv1a(name.as_bytes());
    let total = regressions.len() as u32 + cfg.cases;
    for i in 0..total {
        let (seed, origin) = match regressions.get(i as usize) {
            Some(&s) => (s, "regression"),
            None => (clip_rng::splitmix64(&mut stream), "generated"),
        };
        let mut rng = Rng::seed_from_u64(seed);
        let mut dbg = String::new();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| case(&mut rng, &mut dbg)));
        match outcome {
            Ok(()) => {}
            Err(payload) => {
                if payload_text(&*payload).contains(REJECT_MARKER) {
                    skipped += 1;
                    continue;
                }
                eprintln!(
                    "clip-proptest: property `{name}` failed on {origin} case \
                     {i}/{total} (seed {seed:#018x})\n  inputs: {dbg}\n  replay: \
                     CLIP_PROPTEST_SEED={seed:#x} CLIP_PROPTEST_CASES=1"
                );
                panic::resume_unwind(payload);
            }
        }
    }
    if skipped * 2 > total {
        eprintln!(
            "clip-proptest: property `{name}` skipped {skipped}/{total} cases via \
             prop_assume!; consider raising `cases:`"
        );
    }
}

fn payload_text(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("")
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Skips the current case when `cond` is false (see crate docs: skipped,
/// not resampled).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            ::std::panic!("{}", $crate::REJECT_MARKER);
        }
    };
}

/// `assert!` under a porting-friendly name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// `assert_eq!` under a porting-friendly name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// `assert_ne!` under a porting-friendly name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

/// Declares property tests.
///
/// ```ignore
/// proptest_lite! {
///     cases: 48;
///     regressions: "tests/my_suite.proptest-regressions"; // optional
///
///     fn my_property(x in gens::int(0..10u32), flag in gens::bool()) {
///         assert!(x < 10);
///     }
/// }
/// ```
///
/// Each `fn` becomes a `#[test]` that draws its arguments from the given
/// generators `cases` times (plus one replay per regression seed).
#[macro_export]
macro_rules! proptest_lite {
    (@items ($cases:expr, $reg:expr)) => {};
    (@items ($cases:expr, $reg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg = $crate::Config::from_env($cases);
            let seeds = $crate::regression_seeds(env!("CARGO_MANIFEST_DIR"), $reg);
            $crate::run(&cfg, stringify!($name), &seeds, |rng, dbg| {
                $(let $arg = ($gen).sample(rng);)+
                $(
                    dbg.push_str(stringify!($arg));
                    dbg.push_str(" = ");
                    dbg.push_str(&format!("{:?}; ", $arg));
                )+
                $body
            });
        }
        $crate::proptest_lite!{@items ($cases, $reg) $($rest)*}
    };
    (cases: $cases:expr; regressions: $reg:expr; $($rest:tt)*) => {
        $crate::proptest_lite!{@items ($cases, ::core::option::Option::Some($reg)) $($rest)*}
    };
    (cases: $cases:expr; $($rest:tt)*) => {
        $crate::proptest_lite!{@items ($cases, ::core::option::Option::<&str>::None) $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::proptest_lite!{@items (256u32, ::core::option::Option::<&str>::None) $($rest)*}
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_compose() {
        let mut rng = Rng::seed_from_u64(1);
        let g = gens::int(0..5u32).map(|v| v * 10);
        for _ in 0..100 {
            let v = g.sample(&mut rng);
            assert!(v % 10 == 0 && v < 50);
        }
        let vecs = gens::int(0..3u8).vec(2..=4);
        for _ in 0..50 {
            let v = vecs.sample(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
        let arr = gens::int(0..9usize).array::<5>().sample(&mut rng);
        assert_eq!(arr.len(), 5);
        let dep = gens::int(1..=4usize).flat_map(|n| gens::int(0..n).vec(n..=n));
        for _ in 0..50 {
            let v = dep.sample(&mut rng);
            assert!(v.iter().all(|&x| x < v.len()));
        }
    }

    #[test]
    fn one_of_hits_every_arm() {
        let mut rng = Rng::seed_from_u64(2);
        let g = gens::one_of(vec![gens::just(1u8), gens::just(2), gens::just(3)]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[g.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn recursive_generates_bounded_depth() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = gens::int(0..10u8).map(Tree::Leaf);
        let g = gens::recursive(4, leaf, |inner| inner.vec(1..=3).map(Tree::Node));
        let mut rng = Rng::seed_from_u64(3);
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(depth(&g.sample(&mut rng)));
        }
        assert!(max > 0, "branches do occur");
        assert!(max <= 4, "depth bounded, got {max}");
    }

    #[test]
    fn run_is_deterministic_per_name() {
        use std::cell::RefCell;
        let record = |name: &'static str| {
            let vals = RefCell::new(Vec::new());
            run(
                &Config {
                    cases: 10,
                    seed: DEFAULT_SEED,
                },
                name,
                &[],
                |rng, _| vals.borrow_mut().push(rng.next_u64()),
            );
            vals.into_inner()
        };
        assert_eq!(record("alpha"), record("alpha"));
        assert_ne!(record("alpha"), record("beta"));
    }

    #[test]
    fn regression_seeds_replay_first() {
        use std::cell::RefCell;
        let first = RefCell::new(None);
        run(
            &Config { cases: 2, seed: 0 },
            "reg",
            &[0xDEAD_BEEF],
            |rng, _| {
                let mut expect = Rng::seed_from_u64(0xDEAD_BEEF);
                first
                    .borrow_mut()
                    .get_or_insert_with(|| rng.next_u64() == expect.next_u64());
            },
        );
        assert_eq!(first.into_inner(), Some(true));
    }

    #[test]
    fn regression_file_parsing() {
        let dir = std::env::temp_dir().join("clip-proptest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("suite.proptest-regressions");
        std::fs::write(
            &path,
            "# comment line\n\
             cc 887cb06c5ca51f913c8fde1c80f1b6268336cd44c6efa4a429dd724537fbc3b2 # shrinks to e = ...\n\
             cc 0123456789abcdef00 # short\n\
             not a seed line\n",
        )
        .unwrap();
        let seeds = regression_seeds(dir.to_str().unwrap(), Some("suite.proptest-regressions"));
        assert_eq!(seeds, vec![0x887c_b06c_5ca5_1f91, 0x0123_4567_89ab_cdef]);
        assert!(regression_seeds(dir.to_str().unwrap(), Some("missing-file")).is_empty());
        assert!(regression_seeds(dir.to_str().unwrap(), None).is_empty());
    }

    #[test]
    fn prop_assume_skips_without_failing() {
        run(&Config { cases: 20, seed: 1 }, "assume", &[], |rng, _| {
            let v = rng.gen_range(0..10u32);
            prop_assume!(v < 5);
            assert!(v < 5);
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        run(&Config { cases: 5, seed: 1 }, "fail", &[], |_, dbg| {
            dbg.push_str("input = ()");
            panic!("boom");
        });
    }

    proptest_lite! {
        cases: 16;

        fn macro_generated_test(a in gens::int(0..100u32), b in gens::bool()) {
            assert!(a < 100);
            let _ = b;
        }
    }
}
