//! Property tests: every randomly generated series-parallel expression
//! must compile to a complementary CMOS netlist that (a) validates, (b)
//! pairs completely, (c) computes the expression under exhaustive
//! switch-level simulation, and (d) survives a SPICE round trip.

use clip_netlist::sim::simulate;
use clip_netlist::{spice, Expr, NetId};
use proptest::prelude::*;

/// Random expression over variables a..e, with bounded depth.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..5u8).prop_map(|i| Expr::Var(format!("{}", (b'a' + i) as char))),
        (0..5u8).prop_map(|i| Expr::Not(Box::new(Expr::Var(format!(
            "{}",
            (b'a' + i) as char
        ))))),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..=3).prop_map(Expr::And),
            prop::collection::vec(inner.clone(), 2..=3).prop_map(Expr::Or),
            inner.prop_map(|e| match e {
                Expr::Not(x) => *x, // keep double negations collapsed
                other => Expr::Not(Box::new(other)),
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_circuits_compute_their_expression(e in expr_strategy()) {
        let circuit = e.compile("dut", "z").expect("compiles");
        prop_assert!(circuit.validate().is_ok());

        let vars = e.variables();
        let z = circuit.nets().lookup("z").expect("output exists");
        for bits in 0..(1u32 << vars.len()) {
            let assignment: Vec<(NetId, bool)> = vars
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    (circuit.nets().lookup(v).expect("input exists"), bits & (1 << i) != 0)
                })
                .collect();
            let want = e.eval(&|name| {
                vars.iter()
                    .position(|v| v == name)
                    .map(|i| bits & (1 << i) != 0)
            });
            let values = simulate(&circuit, &assignment)
                .map_err(|err| TestCaseError::fail(format!("sim failed: {err}")))?;
            prop_assert_eq!(values[&z], want, "bits {:b}", bits);
        }
    }

    #[test]
    fn compiled_circuits_pair_completely(e in expr_strategy()) {
        let circuit = e.compile("dut", "z").expect("compiles");
        let devices = circuit.devices().len();
        let paired = circuit.into_paired().expect("complementary circuits pair");
        prop_assert_eq!(paired.len() * 2, devices);
        for (id, _) in paired.iter_pairs() {
            prop_assert_eq!(paired.p_device(id).gate, paired.n_device(id).gate);
        }
    }

    #[test]
    fn spice_round_trip_preserves_structure(e in expr_strategy()) {
        let circuit = e.compile("dut", "z").expect("compiles");
        let text = spice::write(&circuit);
        let back = spice::parse("dut", &text).expect("parses");
        prop_assert_eq!(back.devices().len(), circuit.devices().len());
        prop_assert_eq!(spice::write(&back), text);
    }

    #[test]
    fn expression_display_reparses(e in expr_strategy()) {
        let printed = format!("{e}");
        let reparsed = Expr::parse(&printed)
            .map_err(|err| TestCaseError::fail(format!("reparse failed: {err}")))?;
        // Display flattens nested same-operator nodes, so compare
        // semantically: both must evaluate identically everywhere.
        let vars = e.variables();
        prop_assert_eq!(reparsed.variables(), vars.clone());
        for bits in 0..(1u32 << vars.len()) {
            let lookup = |name: &str| {
                vars.iter()
                    .position(|v| v == name)
                    .map(|i| bits & (1 << i) != 0)
            };
            prop_assert_eq!(e.eval(&lookup), reparsed.eval(&lookup), "bits {:b}", bits);
        }
    }
}
