//! Property tests: every randomly generated series-parallel expression
//! must compile to a complementary CMOS netlist that (a) validates, (b)
//! pairs completely, (c) computes the expression under exhaustive
//! switch-level simulation, and (d) survives a SPICE round trip.

use clip_netlist::sim::simulate;
use clip_netlist::{spice, Expr, NetId};
use clip_proptest::{gens, proptest_lite, Gen};

/// Random expression over variables a..e, with bounded depth.
fn expr_gen() -> Gen<Expr> {
    let var = gens::int(0..5u8).map(|i| Expr::Var(format!("{}", (b'a' + i) as char)));
    let leaf = gens::one_of(vec![var.clone(), var.map(|v| Expr::Not(Box::new(v)))]);
    gens::recursive(3, leaf, |inner| {
        gens::one_of(vec![
            inner.clone().vec(2..=3).map(Expr::And),
            inner.clone().vec(2..=3).map(Expr::Or),
            inner.map(|e| match e {
                Expr::Not(x) => *x, // keep double negations collapsed
                other => Expr::Not(Box::new(other)),
            }),
        ])
    })
}

fn check_computes(e: &Expr) {
    let circuit = e.compile("dut", "z").expect("compiles");
    assert!(circuit.validate().is_ok());

    let vars = e.variables();
    let z = circuit.nets().lookup("z").expect("output exists");
    for bits in 0..(1u32 << vars.len()) {
        let assignment: Vec<(NetId, bool)> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| {
                (
                    circuit.nets().lookup(v).expect("input exists"),
                    bits & (1 << i) != 0,
                )
            })
            .collect();
        let want = e.eval(&|name| {
            vars.iter()
                .position(|v| v == name)
                .map(|i| bits & (1 << i) != 0)
        });
        let values =
            simulate(&circuit, &assignment).unwrap_or_else(|err| panic!("sim failed: {err}"));
        assert_eq!(values[&z], want, "bits {bits:b}");
    }
}

proptest_lite! {
    cases: 48;
    regressions: "tests/proptest_netlist.proptest-regressions";

    fn compiled_circuits_compute_their_expression(e in expr_gen()) {
        check_computes(&e);
    }

    fn compiled_circuits_pair_completely(e in expr_gen()) {
        let circuit = e.compile("dut", "z").expect("compiles");
        let devices = circuit.devices().len();
        let paired = circuit.into_paired().expect("complementary circuits pair");
        assert_eq!(paired.len() * 2, devices);
        for (id, _) in paired.iter_pairs() {
            assert_eq!(paired.p_device(id).gate, paired.n_device(id).gate);
        }
    }

    fn spice_round_trip_preserves_structure(e in expr_gen()) {
        let circuit = e.compile("dut", "z").expect("compiles");
        let text = spice::write(&circuit);
        let back = spice::parse("dut", &text).expect("parses");
        assert_eq!(back.devices().len(), circuit.devices().len());
        assert_eq!(spice::write(&back), text);
    }

    fn expression_display_reparses(e in expr_gen()) {
        let printed = format!("{e}");
        let reparsed =
            Expr::parse(&printed).unwrap_or_else(|err| panic!("reparse failed: {err}"));
        // Display flattens nested same-operator nodes, so compare
        // semantically: both must evaluate identically everywhere.
        let vars = e.variables();
        assert_eq!(reparsed.variables(), vars.clone());
        for bits in 0..(1u32 << vars.len()) {
            let lookup = |name: &str| {
                vars.iter()
                    .position(|v| v == name)
                    .map(|i| bits & (1 << i) != 0)
            };
            assert_eq!(e.eval(&lookup), reparsed.eval(&lookup), "bits {bits:b}");
        }
    }
}

/// The shrunk counterexample recorded in the proptest-era regressions
/// file, kept as an explicit named case (the seed itself is replayed by
/// the `regressions:` directive above, but the proptest digest does not
/// encode the value — this pins the actual input).
#[test]
fn regression_nested_and_with_repeated_variable() {
    let e = Expr::And(vec![
        Expr::And(vec![Expr::Var("a".into()), Expr::Var("a".into())]),
        Expr::Var("a".into()),
    ]);
    check_computes(&e);
}
