//! Switch-level simulator used to validate library circuits.
//!
//! Static CMOS cells are validated by exhaustively simulating every input
//! assignment: transistors are ideal switches (an N device conducts when its
//! gate is 1, a P device when its gate is 0), nets take the value of the
//! driver (rail or primary input) they are conductively connected to, and a
//! net connected to both rails is a short — a hard error, because it means
//! the netlist is not a well-formed complementary network.
//!
//! The solver iterates to a fixpoint, so multi-gate cells (where internal
//! gate nets must settle before downstream transistors switch) simulate
//! correctly. Feedback structures that never settle are reported as
//! [`SimError::Unresolved`].

use std::collections::HashMap;

use crate::circuit::Circuit;
use crate::device::DeviceKind;
use crate::net::NetId;

/// Simulation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A net is conductively connected to both VDD and GND.
    Short(NetId),
    /// Some nets never acquired a value (floating node or unsettled
    /// feedback).
    Unresolved(Vec<NetId>),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Short(n) => write!(f, "net {n} is shorted between VDD and GND"),
            SimError::Unresolved(ns) => write!(f, "{} nets never resolved", ns.len()),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulates `circuit` under the given primary-input assignment.
///
/// Returns the settled Boolean value of every net that resolved. All nets
/// with at least one device terminal must resolve; purely floating declared
/// nets are permitted and simply absent from the result.
///
/// # Errors
///
/// * [`SimError::Short`] if a net connects to both rails — the circuit is
///   not a valid complementary network (or an input combination exposes a
///   drive fight);
/// * [`SimError::Unresolved`] if device-connected nets never settle.
pub fn simulate(
    circuit: &Circuit,
    inputs: &[(NetId, bool)],
) -> Result<HashMap<NetId, bool>, SimError> {
    let n_nets = circuit.nets().len();
    let mut value: Vec<Option<bool>> = vec![None; n_nets];
    let mut forced: Vec<Option<bool>> = vec![None; n_nets];

    forced[circuit.nets().vdd().index()] = Some(true);
    forced[circuit.nets().gnd().index()] = Some(false);
    for &(net, v) in inputs {
        forced[net.index()] = Some(v);
    }
    for (i, f) in forced.iter().enumerate() {
        value[i] = *f;
    }

    // Fixpoint: as internal gate values settle, more transistors switch on.
    loop {
        let mut uf = UnionFind::new(n_nets);
        for d in circuit.devices() {
            let conducting = match value[d.gate.index()] {
                Some(g) => match d.kind {
                    DeviceKind::N => g,
                    DeviceKind::P => !g,
                },
                None => false,
            };
            if conducting {
                uf.union(d.source.index(), d.drain.index());
            }
        }

        // Determine the driven value of every component.
        let mut driver: Vec<Option<bool>> = vec![None; n_nets];
        for (i, f) in forced.iter().enumerate() {
            if let Some(v) = *f {
                let root = uf.find(i);
                match driver[root] {
                    None => driver[root] = Some(v),
                    Some(existing) if existing != v => {
                        return Err(SimError::Short(NetId::from_index(i)));
                    }
                    Some(_) => {}
                }
            }
        }

        let mut changed = false;
        for i in 0..n_nets {
            if value[i].is_none() {
                if let Some(v) = driver[uf.find(i)] {
                    value[i] = Some(v);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Every *controlling* net — a gate net or a declared output — must have
    // settled. Interior diffusion nodes of switched-off series chains float
    // legitimately in static CMOS and are allowed to stay unknown.
    let mut must_resolve = vec![false; n_nets];
    for d in circuit.devices() {
        must_resolve[d.gate.index()] = true;
    }
    for &o in circuit.outputs() {
        must_resolve[o.index()] = true;
    }
    let unresolved: Vec<NetId> = (0..n_nets)
        .filter(|&i| must_resolve[i] && value[i].is_none())
        .map(NetId::from_index)
        .collect();
    if !unresolved.is_empty() {
        return Err(SimError::Unresolved(unresolved));
    }

    Ok(value
        .into_iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|v| (NetId::from_index(i), v)))
        .collect())
}

/// Exhaustively checks that `circuit` computes `expected` on its output.
///
/// `inputs` fixes the input ordering used to interpret the assignment bits
/// passed to `expected` (bit `i` of the argument is input `i`).
///
/// # Errors
///
/// Returns the first failing assignment as `(bits, got, want)`, or a
/// [`SimError`] wrapped in `Err(Err(..))` style via panic-free reporting.
///
/// # Panics
///
/// Panics if the circuit has more than 20 inputs (exhaustive check would be
/// too large) or if simulation itself fails.
pub fn check_truth_table(
    circuit: &Circuit,
    inputs: &[NetId],
    output: NetId,
    expected: &dyn Fn(u32) -> bool,
) -> Result<(), (u32, bool, bool)> {
    assert!(inputs.len() <= 20, "too many inputs for exhaustive check");
    for bits in 0..(1u32 << inputs.len()) {
        let assignment: Vec<(NetId, bool)> = inputs
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, bits & (1 << i) != 0))
            .collect();
        let values = simulate(circuit, &assignment)
            .unwrap_or_else(|e| panic!("simulation failed at bits {bits:b}: {e}"));
        let got = values[&output];
        let want = expected(bits);
        if got != want {
            return Err((bits, got, want));
        }
    }
    Ok(())
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::device::DeviceKind;

    fn inverter() -> Circuit {
        let mut b = Circuit::builder("inv");
        let a = b.net("a");
        let z = b.net("z");
        let (vdd, gnd) = (b.vdd(), b.gnd());
        b.device(DeviceKind::P, a, vdd, z);
        b.device(DeviceKind::N, a, gnd, z);
        b.input(a).output(z);
        b.build()
    }

    #[test]
    fn inverter_inverts() {
        let c = inverter();
        let a = c.nets().lookup("a").unwrap();
        let z = c.nets().lookup("z").unwrap();
        let v = simulate(&c, &[(a, false)]).unwrap();
        assert!(v[&z]);
        let v = simulate(&c, &[(a, true)]).unwrap();
        assert!(!v[&z]);
    }

    #[test]
    fn short_is_detected() {
        // Both devices always on for a=0: P conducts, and a second N gated
        // by b=1 also pulls z low -> short at z.
        let mut b = Circuit::builder("short");
        let a = b.net("a");
        let bb = b.net("b");
        let z = b.net("z");
        let (vdd, gnd) = (b.vdd(), b.gnd());
        b.device(DeviceKind::P, a, vdd, z);
        b.device(DeviceKind::N, bb, gnd, z);
        let c = b.build();
        let err = simulate(&c, &[(a, false), (bb, true)]).unwrap_err();
        assert!(matches!(err, SimError::Short(_)));
    }

    #[test]
    fn floating_output_is_unresolved() {
        let mut b = Circuit::builder("tristate");
        let a = b.net("a");
        let z = b.net("z");
        let gnd = b.gnd();
        b.device(DeviceKind::N, a, gnd, z);
        b.output(z);
        let c = b.build();
        // a=0: N off, z floats.
        let err = simulate(&c, &[(a, false)]).unwrap_err();
        match err {
            SimError::Unresolved(nets) => assert!(nets.contains(&z)),
            other => panic!("expected unresolved, got {other:?}"),
        }
    }

    #[test]
    fn multi_stage_settles_via_fixpoint() {
        // Two chained inverters: y = a' then z = y'.
        let mut b = Circuit::builder("buf");
        let a = b.net("a");
        let y = b.net("y");
        let z = b.net("z");
        let (vdd, gnd) = (b.vdd(), b.gnd());
        b.device(DeviceKind::P, a, vdd, y);
        b.device(DeviceKind::N, a, gnd, y);
        b.device(DeviceKind::P, y, vdd, z);
        b.device(DeviceKind::N, y, gnd, z);
        let c = b.build();
        let v = simulate(&c, &[(a, true)]).unwrap();
        assert!(!v[&y]);
        assert!(v[&z]);
    }

    #[test]
    fn check_truth_table_reports_first_failure() {
        let c = inverter();
        let a = c.nets().lookup("a").unwrap();
        let z = c.nets().lookup("z").unwrap();
        // Claim it's a buffer; must fail at bits=0 (a=0 gives z=1, want 0).
        let err = check_truth_table(&c, &[a], z, &|bits| bits & 1 != 0).unwrap_err();
        assert_eq!(err, (0, true, false));
        // Correct spec passes.
        assert!(check_truth_table(&c, &[a], z, &|bits| bits & 1 == 0).is_ok());
    }
}
