//! Seeded random circuit generation.
//!
//! Produces random *valid complementary* CMOS cells by sampling random
//! series-parallel formulas and compiling them. Used by the scaling
//! experiment (solve time vs. circuit size on populations of random
//! gates) and as a fuzzing source beyond the fixed library.

use clip_rng::Rng;

use crate::circuit::Circuit;
use crate::expr::Expr;

/// Generates a random inverting gate with roughly `target_pairs`
/// transistor pairs (each formula literal contributes one pair; inner
/// complements add inverter pairs).
///
/// The result is always a valid complementary circuit; its exact pair
/// count can exceed `target_pairs` slightly when nested complements are
/// sampled.
///
/// # Panics
///
/// Panics if `target_pairs == 0`.
pub fn random_gate(seed: u64, target_pairs: usize) -> Circuit {
    assert!(target_pairs > 0, "need at least one pair");
    let mut rng = Rng::seed_from_u64(seed);
    let expr = Expr::Not(Box::new(random_formula(&mut rng, target_pairs, 0)));
    expr.compile("random", "z")
        .expect("generated formulas compile")
}

/// Random series-parallel formula with `budget` leaves.
fn random_formula(rng: &mut Rng, budget: usize, depth: usize) -> Expr {
    if budget <= 1 || depth >= 4 {
        let v = Expr::Var(format!("{}", (b'a' + rng.gen_range(0..6u8)) as char));
        // Occasionally complement a leaf (adds an inverter pair).
        return if depth > 0 && rng.gen_bool(0.2) {
            Expr::Not(Box::new(v))
        } else {
            v
        };
    }
    // Split the budget across 2-3 children.
    let arms = if budget >= 3 && rng.gen_bool(0.3) {
        3
    } else {
        2
    };
    let mut remaining = budget;
    let mut children = Vec::with_capacity(arms);
    for k in 0..arms {
        let share = if k + 1 == arms {
            remaining
        } else {
            rng.gen_range(1..=remaining - (arms - 1 - k))
        };
        remaining -= share;
        children.push(random_formula(rng, share, depth + 1));
    }
    if rng.gen_bool(0.5) {
        Expr::And(children)
    } else {
        Expr::Or(children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_gates_are_valid_and_pair() {
        for seed in 0..40 {
            let c = random_gate(seed, 4);
            assert!(c.validate().is_ok(), "seed {seed}");
            let paired = c
                .into_paired()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(paired.len() >= 2, "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_gate(7, 5);
        let b = random_gate(7, 5);
        assert_eq!(
            crate::spice::write(&a),
            crate::spice::write(&b),
            "same seed must give the same circuit"
        );
        let c = random_gate(8, 5);
        assert_ne!(crate::spice::write(&a), crate::spice::write(&c));
    }

    #[test]
    fn size_scales_with_target() {
        let small: usize = (0..10).map(|s| random_gate(s, 2).devices().len()).sum();
        let large: usize = (0..10).map(|s| random_gate(s, 8).devices().len()).sum();
        assert!(large > small);
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn zero_target_panics() {
        random_gate(0, 0);
    }
}
