//! Individual MOS devices.

use std::fmt;

use crate::net::NetId;

/// Polarity of a MOS transistor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceKind {
    /// PMOS device (pull-up network, connects toward VDD).
    P,
    /// NMOS device (pull-down network, connects toward GND).
    N,
}

impl DeviceKind {
    /// The opposite polarity.
    ///
    /// # Example
    ///
    /// ```
    /// use clip_netlist::DeviceKind;
    /// assert_eq!(DeviceKind::P.complement(), DeviceKind::N);
    /// ```
    pub fn complement(self) -> DeviceKind {
        match self {
            DeviceKind::P => DeviceKind::N,
            DeviceKind::N => DeviceKind::P,
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::P => write!(f, "P"),
            DeviceKind::N => write!(f, "N"),
        }
    }
}

/// Compact handle for a device within a [`Circuit`](crate::Circuit).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub(crate) u32);

impl DeviceId {
    /// Dense index of the device (its creation order within the circuit).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `DeviceId` from a dense index.
    pub fn from_index(index: usize) -> Self {
        DeviceId(index as u32)
    }
}

impl fmt::Debug for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A single MOS transistor.
///
/// Source/drain are interchangeable electrically; CLIP exploits exactly that
/// freedom when choosing pair orientations, so the distinction recorded here
/// is purely a naming convention fixed by the netlist.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Device {
    /// Polarity.
    pub kind: DeviceKind,
    /// Gate net.
    pub gate: NetId,
    /// Source-side diffusion net.
    pub source: NetId,
    /// Drain-side diffusion net.
    pub drain: NetId,
}

impl Device {
    /// Creates a device.
    pub fn new(kind: DeviceKind, gate: NetId, source: NetId, drain: NetId) -> Self {
        Device {
            kind,
            gate,
            source,
            drain,
        }
    }

    /// Returns true if `net` touches either diffusion terminal.
    pub fn touches_diffusion(&self, net: NetId) -> bool {
        self.source == net || self.drain == net
    }

    /// Returns true if `net` touches any terminal (gate included).
    pub fn touches(&self, net: NetId) -> bool {
        self.gate == net || self.touches_diffusion(net)
    }

    /// The diffusion terminal opposite `net`, if `net` is a diffusion
    /// terminal of this device.
    pub fn other_diffusion(&self, net: NetId) -> Option<NetId> {
        if self.source == net {
            Some(self.drain)
        } else if self.drain == net {
            Some(self.source)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetTable;

    fn sample() -> (NetTable, Device) {
        let mut nets = NetTable::new();
        let a = nets.intern("a");
        let z = nets.intern("z");
        let gnd = nets.gnd();
        (nets, Device::new(DeviceKind::N, a, z, gnd))
    }

    #[test]
    fn complement_is_involutive() {
        assert_eq!(DeviceKind::P.complement().complement(), DeviceKind::P);
        assert_eq!(DeviceKind::N.complement().complement(), DeviceKind::N);
    }

    #[test]
    fn touches_distinguishes_gate_and_diffusion() {
        let (nets, d) = sample();
        let a = nets.lookup("a").unwrap();
        let z = nets.lookup("z").unwrap();
        assert!(d.touches(a));
        assert!(!d.touches_diffusion(a));
        assert!(d.touches_diffusion(z));
        assert!(d.touches_diffusion(nets.gnd()));
        assert!(!d.touches(nets.vdd()));
    }

    #[test]
    fn other_diffusion_walks_the_channel() {
        let (nets, d) = sample();
        let z = nets.lookup("z").unwrap();
        assert_eq!(d.other_diffusion(z), Some(nets.gnd()));
        assert_eq!(d.other_diffusion(nets.gnd()), Some(z));
        assert_eq!(d.other_diffusion(nets.vdd()), None);
    }

    #[test]
    fn device_id_round_trips() {
        let id = DeviceId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id:?}"), "d7");
    }
}
