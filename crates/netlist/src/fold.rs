//! Transistor folding.
//!
//! The paper's conclusion lists folding as a direct extension: "CLIP can
//! be extended to accommodate transistor folding and performance-directed
//! synthesis" (following XPRESS \[7\]). A wide transistor is *folded* into
//! `k` parallel fingers of `1/k` width; the fingers are electrically
//! parallel, and because each finger alternates its source/drain ends they
//! chain with full diffusion sharing in the layout. Folding therefore
//! trades cell height (device width) for cell width (finger count) — and
//! CLIP can place the folded circuit optimally without any model change.
//!
//! Folding operates at the P/N-pair level so the folded circuit pairs
//! cleanly: [`fold_pairs`] replicates both members of each selected pair.

use crate::circuit::Circuit;
use crate::device::Device;
use crate::pair::{PairCircuitError, PairId, PairedCircuit};

/// Folds selected pairs of `paired` into parallel fingers.
///
/// `factor(pair)` gives the finger count for each pair; `1` leaves the
/// pair untouched. Both the P and N member of a pair are folded by the
/// same factor, so every gate group stays balanced and the result pairs
/// cleanly again.
///
/// # Errors
///
/// Propagates [`PairCircuitError`] from re-pairing (cannot occur for
/// well-formed inputs and positive factors).
///
/// # Panics
///
/// Panics if `factor` returns 0 for any pair.
pub fn fold_pairs(
    paired: &PairedCircuit,
    factor: &dyn Fn(PairId) -> usize,
) -> Result<PairedCircuit, PairCircuitError> {
    let source = paired.circuit();
    let mut b = Circuit::builder(&format!("{}_folded", source.name()));
    // Recreate all nets by name so ids stay stable relative to names.
    for net in source.nets().iter() {
        b.net(source.nets().name(net));
    }

    let mut emit = |d: &Device, k: usize| {
        assert!(k > 0, "fold factor must be positive");
        for finger in 0..k {
            // Alternate the finger orientation so adjacent fingers abut:
            // s-d | d-s | s-d ...
            if finger % 2 == 0 {
                b.device(d.kind, d.gate, d.source, d.drain);
            } else {
                b.device(d.kind, d.gate, d.drain, d.source);
            }
        }
    };

    for (id, _) in paired.iter_pairs() {
        let k = factor(id);
        emit(paired.p_device(id), k);
        emit(paired.n_device(id), k);
    }
    for &i in source.inputs() {
        let n = b.net(source.nets().name(i));
        b.input(n);
    }
    for &o in source.outputs() {
        let n = b.net(source.nets().name(o));
        b.output(n);
    }
    b.build().into_paired()
}

/// Folds every pair uniformly by `k`.
///
/// # Errors
///
/// See [`fold_pairs`].
pub fn fold_uniform(paired: &PairedCircuit, k: usize) -> Result<PairedCircuit, PairCircuitError> {
    fold_pairs(paired, &|_| k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::sim::simulate;

    #[test]
    fn uniform_fold_multiplies_pairs() {
        let paired = library::nand2().into_paired().unwrap();
        let folded = fold_uniform(&paired, 3).unwrap();
        assert_eq!(folded.len(), paired.len() * 3);
        assert_eq!(
            folded.circuit().devices().len(),
            paired.circuit().devices().len() * 3
        );
    }

    #[test]
    fn folding_preserves_function() {
        let paired = library::xor2().into_paired().unwrap();
        let folded = fold_uniform(&paired, 2).unwrap();
        let c = folded.circuit();
        let nets = c.nets();
        let (a, b, z) = (
            nets.lookup("a").unwrap(),
            nets.lookup("b").unwrap(),
            nets.lookup("z").unwrap(),
        );
        for bits in 0..4u32 {
            let (av, bv) = (bits & 1 != 0, bits & 2 != 0);
            let values = simulate(c, &[(a, av), (b, bv)]).unwrap();
            assert_eq!(values[&z], av ^ bv, "bits {bits:b}");
        }
    }

    #[test]
    fn selective_fold_touches_only_selected_pairs() {
        let paired = library::nand2().into_paired().unwrap();
        let first = paired.iter_pairs().next().unwrap().0;
        let folded = fold_pairs(&paired, &|id| if id == first { 2 } else { 1 }).unwrap();
        assert_eq!(folded.len(), 3);
    }

    #[test]
    fn fingers_alternate_orientation() {
        let paired = library::inverter().into_paired().unwrap();
        let folded = fold_uniform(&paired, 2).unwrap();
        let c = folded.circuit();
        // Fingers 0 and 1 of the P device swap source/drain.
        let p: Vec<&crate::device::Device> = c
            .devices()
            .iter()
            .filter(|d| d.kind == crate::device::DeviceKind::P)
            .collect();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].source, p[1].drain);
        assert_eq!(p[0].drain, p[1].source);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_panics() {
        let paired = library::inverter().into_paired().unwrap();
        let _ = fold_pairs(&paired, &|_| 0);
    }

    #[test]
    fn io_declarations_survive() {
        let paired = library::mux21().into_paired().unwrap();
        let folded = fold_uniform(&paired, 2).unwrap();
        assert_eq!(
            folded.circuit().inputs().len(),
            paired.circuit().inputs().len()
        );
        assert_eq!(
            folded.circuit().outputs().len(),
            paired.circuit().outputs().len()
        );
    }
}
