//! Transistor-level CMOS circuit substrate for the CLIP layout generator.
//!
//! This crate provides everything CLIP needs to know about a circuit before
//! layout begins:
//!
//! * interned electrical nets ([`NetId`], [`NetTable`]);
//! * individual MOS devices ([`Device`], [`DeviceKind`]);
//! * whole circuits ([`Circuit`]) with validation;
//! * P/N transistor pairing ([`PnPair`], [`PairedCircuit`]) — the unit CLIP
//!   places;
//! * a series-parallel Boolean expression compiler ([`expr`]) that builds
//!   complementary static CMOS gates from formulas such as `(a'&(e|f)'|d)'`;
//! * the benchmark circuit library ([`library`]) used by the paper's
//!   evaluation (XOR parity, non-series-parallel bridge, two-level `z`,
//!   2-to-1 multiplexer, and larger cells);
//! * model-size statistics ([`stats`]).
//!
//! # Example
//!
//! ```
//! use clip_netlist::library;
//!
//! let cell = library::mux21();
//! let paired = cell.into_paired().expect("mux pairs completely");
//! assert_eq!(paired.pairs().len(), 7); // 14 transistors = 7 P/N pairs
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod device;
pub mod expr;
pub mod fold;
pub mod library;
pub mod net;
pub mod pair;
pub mod random;
pub mod sim;
pub mod spice;
pub mod stats;

pub use circuit::{Circuit, CircuitBuilder, ValidateCircuitError};
pub use device::{Device, DeviceId, DeviceKind};
pub use expr::{CompileExprError, Expr, ParseExprError};
pub use net::{NetId, NetTable};
pub use pair::{PairCircuitError, PairId, PairedCircuit, PnPair};
pub use stats::CircuitStats;
