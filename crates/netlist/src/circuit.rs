//! Whole-circuit representation and validation.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::device::{Device, DeviceId, DeviceKind};
use crate::net::{NetId, NetTable};
use crate::pair::{PairCircuitError, PairedCircuit};

/// A transistor-level CMOS circuit.
///
/// A `Circuit` owns its [`NetTable`] and a flat device list. Input/output
/// pin metadata is informational — layout only cares about connectivity —
/// but is preserved for rendering and export.
///
/// # Example
///
/// ```
/// use clip_netlist::{Circuit, DeviceKind};
///
/// let mut b = Circuit::builder("inv");
/// let a = b.net("a");
/// let z = b.net("z");
/// let vdd = b.vdd();
/// let gnd = b.gnd();
/// b.device(DeviceKind::P, a, vdd, z);
/// b.device(DeviceKind::N, a, gnd, z);
/// b.input(a).output(z);
/// let inv = b.build();
/// assert_eq!(inv.devices().len(), 2);
/// assert!(inv.validate().is_ok());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    name: String,
    nets: NetTable,
    devices: Vec<Device>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
}

impl Circuit {
    /// Starts building a circuit with the given name.
    pub fn builder(name: &str) -> CircuitBuilder {
        CircuitBuilder {
            circuit: Circuit {
                name: name.to_owned(),
                nets: NetTable::new(),
                devices: Vec::new(),
                inputs: Vec::new(),
                outputs: Vec::new(),
            },
        }
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The net table.
    pub fn nets(&self) -> &NetTable {
        &self.nets
    }

    /// All devices, indexable by [`DeviceId::index`].
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Device lookup.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Declared input nets.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Declared output nets.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Iterates over `(DeviceId, &Device)`.
    pub fn iter_devices(&self) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId::from_index(i), d))
    }

    /// Number of P devices.
    pub fn p_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.kind == DeviceKind::P)
            .count()
    }

    /// Number of N devices.
    pub fn n_count(&self) -> usize {
        self.devices.len() - self.p_count()
    }

    /// Checks structural sanity of the circuit.
    ///
    /// # Errors
    ///
    /// Returns the first problem found:
    /// * no devices at all;
    /// * a device gated by a power rail (constant-on/off transistor);
    /// * a P device with both diffusions on GND or an N device with both on
    ///   VDD (inverted rail hookup);
    /// * mismatched P/N device counts (CLIP places P/N *pairs*).
    pub fn validate(&self) -> Result<(), ValidateCircuitError> {
        if self.devices.is_empty() {
            return Err(ValidateCircuitError::Empty);
        }
        for (id, d) in self.iter_devices() {
            if self.nets.is_rail(d.gate) {
                return Err(ValidateCircuitError::RailGated(id));
            }
            let wrong_rail = match d.kind {
                DeviceKind::P => self.nets.gnd(),
                DeviceKind::N => self.nets.vdd(),
            };
            if d.source == wrong_rail && d.drain == wrong_rail {
                return Err(ValidateCircuitError::WrongRail(id));
            }
        }
        if self.p_count() != self.n_count() {
            return Err(ValidateCircuitError::Unbalanced {
                p: self.p_count(),
                n: self.n_count(),
            });
        }
        Ok(())
    }

    /// Pairs the P and N devices into the [`PairedCircuit`] CLIP places.
    ///
    /// # Errors
    ///
    /// Propagates [`PairCircuitError`] when the devices cannot be matched
    /// into complementary pairs.
    pub fn into_paired(self) -> Result<PairedCircuit, PairCircuitError> {
        PairedCircuit::from_circuit(self)
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_owned();
    }

    /// Renames net `old` to `new`.
    ///
    /// # Panics
    ///
    /// Panics if `old` does not exist or `new` is already interned (merging
    /// nets by rename is not supported — use [`Circuit::absorb`]'s
    /// name-unification instead).
    pub fn rename_net(&mut self, old: &str, new: &str) {
        self.nets.rename(old, new);
    }

    /// Drops declared inputs that are actually *driven* inside the circuit
    /// (they touch diffusion of both a P and an N device — i.e. some gate
    /// output). Used after composing gates with [`Circuit::absorb`], where
    /// each stage declared its own inputs.
    pub fn prune_derived_inputs(&mut self) {
        let mut p_diff = vec![false; self.nets.len()];
        let mut n_diff = vec![false; self.nets.len()];
        for d in &self.devices {
            let mask = match d.kind {
                DeviceKind::P => &mut p_diff,
                DeviceKind::N => &mut n_diff,
            };
            mask[d.source.index()] = true;
            mask[d.drain.index()] = true;
        }
        self.inputs
            .retain(|n| !(p_diff[n.index()] && n_diff[n.index()]));
    }

    /// Nets that appear on at least one diffusion terminal, rails excluded.
    pub fn signal_diffusion_nets(&self) -> Vec<NetId> {
        let mut seen = vec![false; self.nets.len()];
        for d in &self.devices {
            seen[d.source.index()] = true;
            seen[d.drain.index()] = true;
        }
        self.nets
            .iter()
            .filter(|&n| seen[n.index()] && !self.nets.is_rail(n))
            .collect()
    }

    /// Merges another circuit into this one, returning a net-id remapping.
    ///
    /// Nets are unified by name (so `other`'s `"z"` connects to this
    /// circuit's `"z"`); device order is preserved (self's devices first).
    /// Input/output declarations of `other` are appended, minus duplicates.
    pub fn absorb(&mut self, other: &Circuit) -> HashMap<NetId, NetId> {
        let mut map = HashMap::new();
        for old in other.nets.iter() {
            let name = other.nets.name(old);
            // Generated internal nets (underscore-prefixed) are private to
            // their circuit: never unify them across an absorb.
            let new = if let Some(stripped) = name.strip_prefix('_') {
                self.nets.fresh(stripped)
            } else {
                self.nets.intern(name)
            };
            map.insert(old, new);
        }
        for d in &other.devices {
            self.devices.push(Device::new(
                d.kind,
                map[&d.gate],
                map[&d.source],
                map[&d.drain],
            ));
        }
        for &i in &other.inputs {
            let n = map[&i];
            if !self.inputs.contains(&n) {
                self.inputs.push(n);
            }
        }
        for &o in &other.outputs {
            let n = map[&o];
            if !self.outputs.contains(&n) {
                self.outputs.push(n);
            }
        }
        map
    }
}

/// Incremental [`Circuit`] constructor.
///
/// Obtained via [`Circuit::builder`]; see there for an example.
#[derive(Clone, Debug)]
pub struct CircuitBuilder {
    circuit: Circuit,
}

impl CircuitBuilder {
    /// Interns (or looks up) a named net.
    pub fn net(&mut self, name: &str) -> NetId {
        self.circuit.nets.intern(name)
    }

    /// Looks up a named net without interning it.
    pub fn peek_net(&self, name: &str) -> Option<NetId> {
        self.circuit.nets.lookup(name)
    }

    /// Creates a fresh uniquely named internal net.
    pub fn fresh_net(&mut self, hint: &str) -> NetId {
        self.circuit.nets.fresh(hint)
    }

    /// The VDD rail.
    pub fn vdd(&self) -> NetId {
        self.circuit.nets.vdd()
    }

    /// The GND rail.
    pub fn gnd(&self) -> NetId {
        self.circuit.nets.gnd()
    }

    /// Adds a device and returns its id.
    pub fn device(
        &mut self,
        kind: DeviceKind,
        gate: NetId,
        source: NetId,
        drain: NetId,
    ) -> DeviceId {
        let id = DeviceId::from_index(self.circuit.devices.len());
        self.circuit
            .devices
            .push(Device::new(kind, gate, source, drain));
        id
    }

    /// Declares an input pin.
    pub fn input(&mut self, net: NetId) -> &mut Self {
        if !self.circuit.inputs.contains(&net) {
            self.circuit.inputs.push(net);
        }
        self
    }

    /// Declares an output pin.
    pub fn output(&mut self, net: NetId) -> &mut Self {
        if !self.circuit.outputs.contains(&net) {
            self.circuit.outputs.push(net);
        }
        self
    }

    /// Finishes construction.
    pub fn build(self) -> Circuit {
        self.circuit
    }
}

/// Structural problems reported by [`Circuit::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateCircuitError {
    /// The circuit has no devices.
    Empty,
    /// A device's gate is tied to a power rail.
    RailGated(DeviceId),
    /// A device has both diffusion terminals on its opposing rail.
    WrongRail(DeviceId),
    /// P and N device counts differ.
    Unbalanced {
        /// Number of P devices.
        p: usize,
        /// Number of N devices.
        n: usize,
    },
}

impl fmt::Display for ValidateCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateCircuitError::Empty => write!(f, "circuit has no devices"),
            ValidateCircuitError::RailGated(id) => {
                write!(f, "device {id:?} is gated by a power rail")
            }
            ValidateCircuitError::WrongRail(id) => {
                write!(f, "device {id:?} has both diffusions on its opposing rail")
            }
            ValidateCircuitError::Unbalanced { p, n } => {
                write!(f, "unbalanced device counts: {p} P vs {n} N")
            }
        }
    }
}

impl Error for ValidateCircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter() -> Circuit {
        let mut b = Circuit::builder("inv");
        let a = b.net("a");
        let z = b.net("z");
        let (vdd, gnd) = (b.vdd(), b.gnd());
        b.device(DeviceKind::P, a, vdd, z);
        b.device(DeviceKind::N, a, gnd, z);
        b.input(a).output(z);
        b.build()
    }

    #[test]
    fn builder_assembles_an_inverter() {
        let c = inverter();
        assert_eq!(c.name(), "inv");
        assert_eq!(c.devices().len(), 2);
        assert_eq!(c.p_count(), 1);
        assert_eq!(c.n_count(), 1);
        assert_eq!(c.inputs().len(), 1);
        assert_eq!(c.outputs().len(), 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty() {
        let c = Circuit::builder("empty").build();
        assert_eq!(c.validate(), Err(ValidateCircuitError::Empty));
    }

    #[test]
    fn validate_rejects_rail_gate() {
        let mut b = Circuit::builder("bad");
        let z = b.net("z");
        let (vdd, gnd) = (b.vdd(), b.gnd());
        b.device(DeviceKind::P, vdd, vdd, z);
        b.device(DeviceKind::N, vdd, gnd, z);
        let c = b.build();
        assert!(matches!(
            c.validate(),
            Err(ValidateCircuitError::RailGated(_))
        ));
    }

    #[test]
    fn validate_rejects_wrong_rail_hookup() {
        let mut b = Circuit::builder("bad");
        let a = b.net("a");
        let z = b.net("z");
        let (vdd, gnd) = (b.vdd(), b.gnd());
        b.device(DeviceKind::P, a, gnd, gnd); // P shorted across GND
        b.device(DeviceKind::N, a, z, vdd);
        let c = b.build();
        assert!(matches!(
            c.validate(),
            Err(ValidateCircuitError::WrongRail(_))
        ));
    }

    #[test]
    fn validate_rejects_unbalanced() {
        let mut b = Circuit::builder("bad");
        let a = b.net("a");
        let z = b.net("z");
        let gnd = b.gnd();
        b.device(DeviceKind::N, a, gnd, z);
        let c = b.build();
        assert_eq!(
            c.validate(),
            Err(ValidateCircuitError::Unbalanced { p: 0, n: 1 })
        );
    }

    #[test]
    fn input_output_deduplicate() {
        let mut b = Circuit::builder("c");
        let a = b.net("a");
        b.input(a).input(a).output(a).output(a);
        let c = b.build();
        assert_eq!(c.inputs().len(), 1);
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn signal_diffusion_nets_excludes_rails_and_gates() {
        let c = inverter();
        let nets = c.signal_diffusion_nets();
        assert_eq!(nets.len(), 1);
        assert_eq!(c.nets().name(nets[0]), "z");
    }

    #[test]
    fn absorb_unifies_by_name() {
        let mut c = inverter();
        let mut b = Circuit::builder("inv2");
        let z = b.net("z"); // same name as c's output -> should unify
        let y = b.net("y");
        let (vdd, gnd) = (b.vdd(), b.gnd());
        b.device(DeviceKind::P, z, vdd, y);
        b.device(DeviceKind::N, z, gnd, y);
        b.output(y);
        let other = b.build();

        let before_nets = c.nets().len();
        c.absorb(&other);
        assert_eq!(c.devices().len(), 4);
        // Only "y" is new; VDD/GND/z unified.
        assert_eq!(c.nets().len(), before_nets + 1);
        let z_id = c.nets().lookup("z").unwrap();
        // The absorbed P device's gate is the unified z.
        assert_eq!(c.devices()[2].gate, z_id);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn absorb_returns_usable_mapping() {
        let mut c = inverter();
        let other = inverter();
        let map = c.absorb(&other);
        let a_old = other.nets().lookup("a").unwrap();
        let a_new = map[&a_old];
        assert_eq!(c.nets().name(a_new), "a");
    }
}
