//! Benchmark circuit library.
//!
//! These are reconstructions of the circuits used in the CLIP paper's
//! evaluation (Tables 3 and 4), pinned to the transistor counts stated
//! there, plus a set of standard cells used by the wider test/bench suite:
//!
//! | constructor | transistors | role in the paper |
//! |---|---|---|
//! | [`xor2`] | 10 | Table 3 circuit 1 — 2-input parity from SOLO \[1\] |
//! | [`bridge`] | 12 | Table 3 circuit 2 — non-series-parallel bridge \[24\] |
//! | [`two_level_z`] | 12 | Table 3 circuit 3 — `z = (a'·(e+f)'+d)'`, 2-level |
//! | [`mux21`] | 14 | Table 3 circuit 4 / Fig. 2 — 2-to-1 multiplexer |
//! | [`dlatch`] | 12 | Table 3/4 larger cells — level-sensitive D latch |
//! | [`full_adder`] | 28 | Table 3/4 larger cells — mirror adder |
//! | [`xor3`] | 20 | Table 3/4 larger cells — 3-input parity |
//! | [`mux41`] | 42 | HCLIP-scale cell (tree of three muxes) |
//!
//! Everything is functionally verified by exhaustive switch-level
//! simulation in this module's tests.

use crate::circuit::Circuit;
use crate::device::DeviceKind;
use crate::expr::Expr;

/// A plain inverter (2 transistors).
pub fn inverter() -> Circuit {
    gate("inv", "(a)'")
}

/// 2-input NAND (4 transistors).
pub fn nand2() -> Circuit {
    gate("nand2", "(a&b)'")
}

/// 3-input NAND (6 transistors).
pub fn nand3() -> Circuit {
    gate("nand3", "(a&b&c)'")
}

/// 4-input NAND (8 transistors) — a textbook and-stack for HCLIP.
pub fn nand4() -> Circuit {
    gate("nand4", "(a&b&c&d)'")
}

/// 2-input NOR (4 transistors).
pub fn nor2() -> Circuit {
    gate("nor2", "(a|b)'")
}

/// 3-input NOR (6 transistors).
pub fn nor3() -> Circuit {
    gate("nor3", "(a|b|c)'")
}

/// 4-input NOR (8 transistors).
pub fn nor4() -> Circuit {
    gate("nor4", "(a|b|c|d)'")
}

/// AND-OR-INVERT 2-1 (6 transistors).
pub fn aoi21() -> Circuit {
    gate("aoi21", "(a&b|c)'")
}

/// AND-OR-INVERT 2-2 (8 transistors).
pub fn aoi22() -> Circuit {
    gate("aoi22", "(a&b|c&d)'")
}

/// AND-OR-INVERT 2-2-2 (12 transistors).
pub fn aoi222() -> Circuit {
    gate("aoi222", "(a&b|c&d|e&f)'")
}

/// OR-AND-INVERT 2-2 (8 transistors).
pub fn oai22() -> Circuit {
    gate("oai22", "((a|b)&(c|d))'")
}

/// OR-AND-INVERT 2-1 (6 transistors).
pub fn oai21() -> Circuit {
    gate("oai21", "((a|b)&c)'")
}

/// Non-inverting buffer: two cascaded inverters (4 transistors).
pub fn buffer() -> Circuit {
    gate("buffer", "a''")
}

/// 2-input AND: NAND + inverter (6 transistors).
pub fn and2() -> Circuit {
    gate("and2", "a&b")
}

/// 2-input OR: NOR + inverter (6 transistors).
pub fn or2() -> Circuit {
    gate("or2", "a|b")
}

/// 3-input AND: NAND3 + inverter (8 transistors).
pub fn and3() -> Circuit {
    gate("and3", "a&b&c")
}

/// 3-input OR: NOR3 + inverter (8 transistors).
pub fn or3() -> Circuit {
    gate("or3", "a|b|c")
}

/// NAND with one inverted input: `(a'&b)'` (6 transistors).
pub fn nand2b() -> Circuit {
    gate("nand2b", "(a'&b)'")
}

/// 3-input majority: the mirror-adder carry structure plus an output
/// inverter (12 transistors).
pub fn majority3() -> Circuit {
    gate("majority3", "(a&b|c&(a|b))''")
}

/// AND-OR 2-1: `a&b|c` as AOI21 + inverter (8 transistors).
pub fn ao21() -> Circuit {
    gate("ao21", "a&b|c")
}

/// 2-input XNOR: complement parity, NAND + OAI21 structure (10
/// transistors, the dual composition of [`xor2`]).
pub fn xnor2() -> Circuit {
    let mut c = gate("xnor2", "(a&b)'");
    rename_output(&mut c, "x");
    let oai = Expr::parse("(x&(a|b))'")
        .expect("static formula parses")
        .compile("stage2", "z")
        .expect("static formula compiles");
    c.absorb(&oai);
    set_name(&mut c, "xnor2");
    c.prune_derived_inputs();
    c
}

/// A half adder: `sum = a ⊕ b` ([`xor2`]) and `carry = a·b`
/// (NAND + inverter) — 16 transistors.
pub fn half_adder() -> Circuit {
    let mut c = xor2();
    rename_output(&mut c, "sum");
    let nand = Expr::parse("(a&b)'")
        .expect("static formula parses")
        .compile("ha_nand", "cb")
        .expect("static formula compiles");
    c.absorb(&nand);
    let inv = inverter_between("cb", "carry");
    c.absorb(&inv);
    set_name(&mut c, "half_adder");
    c.prune_derived_inputs();
    c
}

/// Table 3 circuit 1: the 2-input parity (XOR) cell from SOLO \[1\]:
/// `x = (a+b)'` (NOR2) feeding `z = (x + a·b)'` (AOI21) — 10 transistors,
/// 5 P/N pairs, and `z = a ⊕ b`.
pub fn xor2() -> Circuit {
    let mut c = gate("xor2", "(a|b)'");
    rename_output(&mut c, "x");
    let aoi = Expr::parse("(x|a&b)'")
        .expect("static formula parses")
        .compile("stage2", "z")
        .expect("static formula compiles");
    c.absorb(&aoi);
    set_name(&mut c, "xor2");
    c.prune_derived_inputs();
    c
}

/// Table 3 circuit 2: the non-series-parallel bridge circuit of Zhang &
/// Asada \[24\]: a 5-transistor Wheatstone-bridge pull-down
/// (`f = a·c + b·d + a·e·d + b·e·c`), its dual-graph bridge pull-up, and an
/// output inverter — 12 transistors, 6 pairs.
pub fn bridge() -> Circuit {
    let mut b = Circuit::builder("bridge");
    let (a, bb, c, d, e) = (b.net("a"), b.net("b"), b.net("c"), b.net("d"), b.net("e"));
    let z = b.net("z"); // z = f' (the complex gate is inverting)
    let zb = b.net("zb"); // buffered complement, zb = f
    let (vdd, gnd) = (b.vdd(), b.gnd());

    // N bridge between z and GND: conduction = a·c + b·d + a·e·d + b·e·c.
    let n1 = b.net("n1");
    let n2 = b.net("n2");
    b.device(DeviceKind::N, a, z, n1);
    b.device(DeviceKind::N, bb, z, n2);
    b.device(DeviceKind::N, e, n1, n2);
    b.device(DeviceKind::N, c, n1, gnd);
    b.device(DeviceKind::N, d, n2, gnd);

    // P dual bridge between VDD and z: dual edges (a,c swap arms with b,d):
    // VDD–m1 (a), VDD–m2 (c), m1–m2 (e), m1–z (b), m2–z (d), so that
    // conduction = a·b + c·d + a·e·d + c·e·b = dual(f).
    let m1 = b.net("m1");
    let m2 = b.net("m2");
    b.device(DeviceKind::P, a, vdd, m1);
    b.device(DeviceKind::P, c, vdd, m2);
    b.device(DeviceKind::P, e, m1, m2);
    b.device(DeviceKind::P, bb, m1, z);
    b.device(DeviceKind::P, d, m2, z);

    // Output inverter.
    b.device(DeviceKind::P, z, vdd, zb);
    b.device(DeviceKind::N, z, gnd, zb);

    b.input(a).input(bb).input(c).input(d).input(e);
    b.output(z).output(zb);
    b.build()
}

/// Table 3 circuit 3: the two-level implementation of
/// `z = (a'·(e+f)' + d)'` — inverter + NOR2 + AOI21, 12 transistors.
pub fn two_level_z() -> Circuit {
    gate("two_level_z", "(a'&(e|f)'|d)'")
}

/// Table 3 circuit 4 / Fig. 2: a 2-to-1 multiplexer with buffered inputs —
/// three inverters plus the AOI gate `z = (s·a' + s'·b')'`, which realizes
/// `z = s·a + s'·b`. 14 transistors, the paper's seven P/N pairs p1..p7.
pub fn mux21() -> Circuit {
    gate("mux21", "(s&a'|s'&b')'")
}

/// A level-sensitive D latch: `q = (g·d + g'·q)` built as complex gate +
/// two inverters (12 transistors). Transparent when `g = 1`.
pub fn dlatch() -> Circuit {
    let mut b = Circuit::builder("dlatch");
    let g = b.net("g");
    let d = b.net("d");
    let gb = b.net("g'");
    let q = b.net("q");
    let qb = b.net("qb");
    let (vdd, gnd) = (b.vdd(), b.gnd());

    // inverter: gb = g'
    b.device(DeviceKind::P, g, vdd, gb);
    b.device(DeviceKind::N, g, gnd, gb);

    // complex gate: qb = (g·d + g'·q)'
    // N network: series(g,d) || series(gb,q) between qb and GND.
    let x1 = b.net("x1");
    let x2 = b.net("x2");
    b.device(DeviceKind::N, g, qb, x1);
    b.device(DeviceKind::N, d, x1, gnd);
    b.device(DeviceKind::N, gb, qb, x2);
    b.device(DeviceKind::N, q, x2, gnd);
    // P network (dual): parallel(g,d) in series with parallel(gb,q).
    let y1 = b.net("y1");
    b.device(DeviceKind::P, g, vdd, y1);
    b.device(DeviceKind::P, d, vdd, y1);
    b.device(DeviceKind::P, gb, y1, qb);
    b.device(DeviceKind::P, q, y1, qb);

    // output inverter: q = qb'
    b.device(DeviceKind::P, qb, vdd, q);
    b.device(DeviceKind::N, qb, gnd, q);

    b.input(g).input(d);
    b.output(q);
    b.build()
}

/// The classic 28-transistor static CMOS mirror full adder:
/// `cout' = (a·b + c·(a+b))'`, `sum' = (a·b·c + cout'·(a+b+c))'`, plus
/// output inverters for `cout` and `sum`.
pub fn full_adder() -> Circuit {
    let mut c = Expr::parse("(a&b|c&(a|b))'")
        .expect("static formula parses")
        .compile("fa_cout", "coutb")
        .expect("static formula compiles");
    let sum_stage = Expr::parse("(a&b&c|coutb&(a|b|c))'")
        .expect("static formula parses")
        .compile("fa_sum", "sumb")
        .expect("static formula compiles");
    c.absorb(&sum_stage);
    let inv_cout = inverter_between("coutb", "cout");
    c.absorb(&inv_cout);
    let inv_sum = inverter_between("sumb", "sum");
    c.absorb(&inv_sum);
    set_name(&mut c, "full_adder");
    c.prune_derived_inputs();
    c
}

/// 3-input parity: two cascaded [`xor2`] stages, 20 transistors.
pub fn xor3() -> Circuit {
    let mut first = xor2(); // z = a ^ b
    rename_output(&mut first, "t");
    // Second stage: parity of t and c, same NOR + AOI21 structure.
    let nor = Expr::parse("(t|c)'")
        .expect("static formula parses")
        .compile("s2nor", "x2")
        .expect("static formula compiles");
    let aoi = Expr::parse("(x2|t&c)'")
        .expect("static formula parses")
        .compile("s2aoi", "z")
        .expect("static formula compiles");
    first.absorb(&nor);
    first.absorb(&aoi);
    set_name(&mut first, "xor3");
    first.prune_derived_inputs();
    first
}

/// 4-to-1 multiplexer as a tree of three [`mux21`]s — 42 transistors, the
/// HCLIP-scale benchmark ("over 30 transistors").
pub fn mux41() -> Circuit {
    // Internal complemented-signal nets (`a'`, `s'`, ...) must be renamed in
    // lockstep with their inputs so that absorbing the three muxes does not
    // accidentally unify unrelated inverter outputs.
    let mut m0 = mux21(); // z = s·a + s'·b
    rename_inputs(&mut m0, &[("s", "s0"), ("s'", "s0'")]);
    rename_output(&mut m0, "t0");

    let mut m1 = mux21();
    rename_inputs(
        &mut m1,
        &[
            ("s", "s0"),
            ("s'", "s0'"),
            ("a", "c"),
            ("a'", "c'"),
            ("b", "d"),
            ("b'", "d'"),
        ],
    );
    rename_output(&mut m1, "t1");

    let mut m2 = mux21();
    rename_inputs(
        &mut m2,
        &[
            ("s", "s1"),
            ("s'", "s1'"),
            ("a", "t0"),
            ("a'", "t0'"),
            ("b", "t1"),
            ("b'", "t1'"),
        ],
    );
    rename_output(&mut m2, "z");

    m0.absorb(&m1);
    m0.absorb(&m2);
    set_name(&mut m0, "mux41");
    m0.prune_derived_inputs();
    m0
}

/// All benchmark circuits used by the paper-style evaluation, in Table 3
/// order, followed by the larger cells.
pub fn evaluation_suite() -> Vec<Circuit> {
    vec![
        xor2(),
        bridge(),
        two_level_z(),
        mux21(),
        dlatch(),
        aoi222(),
        xor3(),
        full_adder(),
    ]
}

/// Additional standard cells beyond the paper's evaluation set.
pub fn extended_suite() -> Vec<Circuit> {
    vec![
        inverter(),
        nand2(),
        nand3(),
        nand4(),
        nor2(),
        nor3(),
        nor4(),
        aoi21(),
        aoi22(),
        oai21(),
        oai22(),
        xnor2(),
        half_adder(),
        mux41(),
        buffer(),
        and2(),
        or2(),
        and3(),
        or3(),
        nand2b(),
        majority3(),
        ao21(),
    ]
}

fn gate(name: &str, formula: &str) -> Circuit {
    Expr::parse(formula)
        .expect("static formula parses")
        .compile(name, "z")
        .expect("static formula compiles")
}

fn inverter_between(input: &str, output: &str) -> Circuit {
    let mut b = Circuit::builder("inv");
    let i = b.net(input);
    let o = b.net(output);
    let (vdd, gnd) = (b.vdd(), b.gnd());
    b.device(DeviceKind::P, i, vdd, o);
    b.device(DeviceKind::N, i, gnd, o);
    b.input(i).output(o);
    b.build()
}

fn set_name(c: &mut Circuit, name: &str) {
    c.set_name(name);
}

fn rename_output(c: &mut Circuit, new_name: &str) {
    c.rename_net("z", new_name);
}

fn rename_inputs(c: &mut Circuit, renames: &[(&str, &str)]) {
    for &(old, new) in renames {
        c.rename_net(old, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::check_truth_table;

    fn bit(bits: u32, i: usize) -> bool {
        bits & (1 << i) != 0
    }

    fn verify(c: &Circuit, inputs: &[&str], output: &str, f: &dyn Fn(u32) -> bool) {
        let nets = c.nets();
        let ids: Vec<_> = inputs
            .iter()
            .map(|n| nets.lookup(n).unwrap_or_else(|| panic!("missing net {n}")))
            .collect();
        let out = nets.lookup(output).unwrap();
        check_truth_table(c, &ids, out, f).unwrap_or_else(|(bits, got, want)| {
            panic!(
                "{}: wrong value at assignment {bits:b}: got {got}, want {want}",
                c.name()
            )
        });
    }

    #[test]
    fn xor2_is_parity_of_two() {
        let c = xor2();
        assert_eq!(c.devices().len(), 10);
        verify(&c, &["a", "b"], "z", &|bits| bit(bits, 0) ^ bit(bits, 1));
    }

    #[test]
    fn bridge_computes_complemented_bridge_function() {
        let c = bridge();
        assert_eq!(c.devices().len(), 12);
        verify(&c, &["a", "b", "c", "d", "e"], "z", &|bits| {
            let (a, b, cc, d, e) = (
                bit(bits, 0),
                bit(bits, 1),
                bit(bits, 2),
                bit(bits, 3),
                bit(bits, 4),
            );
            !(a && cc || b && d || a && e && d || b && e && cc)
        });
    }

    #[test]
    #[allow(clippy::nonminimal_bool)] // formula mirrors the paper's z=(a'(e+f)'+d)'
    fn two_level_z_matches_formula() {
        let c = two_level_z();
        assert_eq!(c.devices().len(), 12);
        verify(&c, &["a", "e", "f", "d"], "z", &|bits| {
            let (a, e, f, d) = (bit(bits, 0), bit(bits, 1), bit(bits, 2), bit(bits, 3));
            !((!a) && !(e || f) || d)
        });
    }

    #[test]
    fn mux21_selects() {
        let c = mux21();
        assert_eq!(c.devices().len(), 14);
        assert_eq!(c.clone().into_paired().unwrap().len(), 7);
        verify(&c, &["s", "a", "b"], "z", &|bits| {
            if bit(bits, 0) {
                bit(bits, 1)
            } else {
                bit(bits, 2)
            }
        });
    }

    #[test]
    fn dlatch_is_transparent_when_enabled() {
        let c = dlatch();
        assert_eq!(c.devices().len(), 12);
        let nets = c.nets();
        let g = nets.lookup("g").unwrap();
        let d = nets.lookup("d").unwrap();
        let q = nets.lookup("q").unwrap();
        for dv in [false, true] {
            let vals = crate::sim::simulate(&c, &[(g, true), (d, dv)]).unwrap();
            assert_eq!(vals[&q], dv);
        }
    }

    #[test]
    fn full_adder_adds() {
        let c = full_adder();
        assert_eq!(c.devices().len(), 28);
        verify(&c, &["a", "b", "c"], "sum", &|bits| {
            (bit(bits, 0) as u32 + bit(bits, 1) as u32 + bit(bits, 2) as u32) % 2 == 1
        });
        verify(&c, &["a", "b", "c"], "cout", &|bits| {
            (bit(bits, 0) as u32 + bit(bits, 1) as u32 + bit(bits, 2) as u32) >= 2
        });
    }

    #[test]
    fn xor3_is_parity_of_three() {
        let c = xor3();
        assert_eq!(c.devices().len(), 20);
        verify(&c, &["a", "b", "c"], "z", &|bits| {
            bit(bits, 0) ^ bit(bits, 1) ^ bit(bits, 2)
        });
    }

    #[test]
    fn mux41_selects_among_four() {
        let c = mux41();
        assert_eq!(c.devices().len(), 42);
        verify(&c, &["s0", "s1", "a", "b", "c", "d"], "z", &|bits| {
            let sel = (bit(bits, 1) as usize) * 2 + (bit(bits, 0) as usize);
            // s1 picks between (t0 = s0?a:b) and (t1 = s0?c:d).
            match sel {
                0b00 => bit(bits, 5), // s1=0,s0=0 -> t1? No: s1=0 -> z=t1=d
                0b01 => bit(bits, 4), // s1=0,s0=1 -> t1=c
                0b10 => bit(bits, 3), // s1=1,s0=0 -> t0=b
                _ => bit(bits, 2),    // s1=1,s0=1 -> t0=a
            }
        });
    }

    #[test]
    fn simple_gates_have_expected_sizes() {
        for (c, n) in [
            (inverter(), 2),
            (nand2(), 4),
            (nand3(), 6),
            (nand4(), 8),
            (nor2(), 4),
            (nor3(), 6),
            (nor4(), 8),
            (aoi21(), 6),
            (aoi22(), 8),
            (aoi222(), 12),
            (oai22(), 8),
        ] {
            assert_eq!(c.devices().len(), n, "{}", c.name());
            assert!(c.validate().is_ok(), "{}", c.name());
        }
    }

    #[test]
    fn nand_gates_compute_nand() {
        verify(&nand2(), &["a", "b"], "z", &|bits| {
            !(bit(bits, 0) && bit(bits, 1))
        });
        verify(&nand4(), &["a", "b", "c", "d"], "z", &|bits| {
            !(bit(bits, 0) && bit(bits, 1) && bit(bits, 2) && bit(bits, 3))
        });
        verify(&nor4(), &["a", "b", "c", "d"], "z", &|bits| {
            !(bit(bits, 0) || bit(bits, 1) || bit(bits, 2) || bit(bits, 3))
        });
        verify(&aoi22(), &["a", "b", "c", "d"], "z", &|bits| {
            !(bit(bits, 0) && bit(bits, 1) || bit(bits, 2) && bit(bits, 3))
        });
        verify(&oai22(), &["a", "b", "c", "d"], "z", &|bits| {
            !((bit(bits, 0) || bit(bits, 1)) && (bit(bits, 2) || bit(bits, 3)))
        });
    }

    #[test]
    fn xnor2_is_complement_parity() {
        let c = xnor2();
        assert_eq!(c.devices().len(), 10);
        verify(&c, &["a", "b"], "z", &|bits| !(bit(bits, 0) ^ bit(bits, 1)));
    }

    #[test]
    fn half_adder_adds_two_bits() {
        let c = half_adder();
        assert_eq!(c.devices().len(), 16);
        verify(&c, &["a", "b"], "sum", &|bits| bit(bits, 0) ^ bit(bits, 1));
        verify(&c, &["a", "b"], "carry", &|bits| {
            bit(bits, 0) && bit(bits, 1)
        });
    }

    #[test]
    fn oai21_computes_its_formula() {
        verify(&oai21(), &["a", "b", "c"], "z", &|bits| {
            !((bit(bits, 0) || bit(bits, 1)) && bit(bits, 2))
        });
    }

    #[test]
    #[allow(clippy::nonminimal_bool)] // gate formulas written in their canonical literal form
    fn composite_gates_compute_their_functions() {
        verify(&buffer(), &["a"], "z", &|bits| bit(bits, 0));
        verify(&and2(), &["a", "b"], "z", &|bits| {
            bit(bits, 0) && bit(bits, 1)
        });
        verify(&or2(), &["a", "b"], "z", &|bits| {
            bit(bits, 0) || bit(bits, 1)
        });
        verify(&and3(), &["a", "b", "c"], "z", &|bits| {
            bit(bits, 0) && bit(bits, 1) && bit(bits, 2)
        });
        verify(&or3(), &["a", "b", "c"], "z", &|bits| {
            bit(bits, 0) || bit(bits, 1) || bit(bits, 2)
        });
        verify(&nand2b(), &["a", "b"], "z", &|bits| {
            !(!bit(bits, 0) && bit(bits, 1))
        });
        verify(&ao21(), &["a", "b", "c"], "z", &|bits| {
            bit(bits, 0) && bit(bits, 1) || bit(bits, 2)
        });
        verify(&majority3(), &["a", "b", "c"], "z", &|bits| {
            (bit(bits, 0) as u8 + bit(bits, 1) as u8 + bit(bits, 2) as u8) >= 2
        });
    }

    #[test]
    fn composite_gate_sizes() {
        for (c, n) in [
            (buffer(), 4),
            (and2(), 6),
            (or2(), 6),
            (and3(), 8),
            (or3(), 8),
            (nand2b(), 6),
            (ao21(), 8),
            (majority3(), 12),
        ] {
            assert_eq!(c.devices().len(), n, "{}", c.name());
        }
    }

    #[test]
    fn extended_suite_is_valid_and_pairs() {
        for c in extended_suite() {
            let name = c.name().to_owned();
            assert!(c.validate().is_ok(), "{name}");
            let paired = c.into_paired().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(paired.len() * 2, paired.circuit().devices().len(), "{name}");
        }
    }

    #[test]
    fn every_suite_member_pairs_completely() {
        for c in evaluation_suite() {
            let name = c.name().to_owned();
            let paired = c.into_paired().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(paired.len() * 2, paired.circuit().devices().len());
        }
    }
}
