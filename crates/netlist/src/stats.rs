//! Circuit statistics for the model-size tables.

use crate::pair::PairedCircuit;

/// Size statistics of a paired circuit, as reported in the paper's
/// model-size discussion (Table 1 in our reproduction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Transistor count.
    pub transistors: usize,
    /// P/N pair count (placement units).
    pub pairs: usize,
    /// Total interned nets (rails included).
    pub nets: usize,
    /// Signal nets appearing on at least one diffusion terminal.
    pub diffusion_nets: usize,
    /// Distinct gate nets.
    pub gate_nets: usize,
    /// Declared primary inputs.
    pub inputs: usize,
    /// Declared primary outputs.
    pub outputs: usize,
    /// Number of orientation-compatible abutment entries in the share
    /// array (size of Fig. 2b for this circuit).
    pub share_entries: usize,
}

impl CircuitStats {
    /// Gathers statistics from a paired circuit.
    ///
    /// `share_entries` is filled by the layout model (it depends on the
    /// orientation algebra, which lives in `clip-core`); this constructor
    /// leaves it 0 and [`CircuitStats::with_share_entries`] completes it.
    pub fn from_paired(paired: &PairedCircuit) -> Self {
        let circuit = paired.circuit();
        let mut gate_nets: Vec<_> = paired.iter_pairs().map(|(id, _)| paired.gate(id)).collect();
        gate_nets.sort();
        gate_nets.dedup();
        CircuitStats {
            name: circuit.name().to_owned(),
            transistors: circuit.devices().len(),
            pairs: paired.len(),
            nets: circuit.nets().len(),
            diffusion_nets: circuit.signal_diffusion_nets().len(),
            gate_nets: gate_nets.len(),
            inputs: circuit.inputs().len(),
            outputs: circuit.outputs().len(),
            share_entries: 0,
        }
    }

    /// Returns a copy with the share-array entry count filled in.
    pub fn with_share_entries(mut self, entries: usize) -> Self {
        self.share_entries = entries;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn mux21_stats() {
        let paired = library::mux21().into_paired().unwrap();
        let s = CircuitStats::from_paired(&paired);
        assert_eq!(s.name, "mux21");
        assert_eq!(s.transistors, 14);
        assert_eq!(s.pairs, 7);
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 1);
        assert!(s.gate_nets >= 3);
        assert_eq!(s.share_entries, 0);
        assert_eq!(s.with_share_entries(9).share_entries, 9);
    }

    #[test]
    fn suite_stats_are_consistent() {
        for c in library::evaluation_suite() {
            let paired = c.into_paired().unwrap();
            let s = CircuitStats::from_paired(&paired);
            assert_eq!(s.transistors, 2 * s.pairs, "{}", s.name);
            assert!(s.nets >= s.diffusion_nets + 2, "{}", s.name);
            assert!(s.gate_nets <= s.pairs, "{}", s.name);
        }
    }
}
