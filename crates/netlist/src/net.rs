//! Interned electrical net identities.
//!
//! Every electrical node in a circuit is interned into a [`NetTable`], which
//! hands out compact [`NetId`] handles. The power rails are ordinary nets
//! with the reserved names `"VDD"` and `"GND"`; [`NetTable::new`] interns
//! them eagerly so [`NetTable::vdd`] and [`NetTable::gnd`] are always valid.

use std::collections::HashMap;
use std::fmt;

/// Compact handle for an interned electrical net.
///
/// `NetId`s are only meaningful relative to the [`NetTable`] that produced
/// them. They order and hash by creation index, which makes them usable as
/// dense array indices via [`NetId::index`].
///
/// # Example
///
/// ```
/// use clip_netlist::NetTable;
///
/// let mut nets = NetTable::new();
/// let a = nets.intern("a");
/// assert_eq!(nets.intern("a"), a); // interning is idempotent
/// assert_eq!(nets.name(a), "a");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(u32);

impl NetId {
    /// Returns the dense index of this net (its creation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NetId` from a dense index.
    ///
    /// Intended for lookup tables that were themselves indexed by
    /// [`NetId::index`]; passing an index that was never handed out by the
    /// corresponding [`NetTable`] yields a dangling id.
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

impl fmt::Debug for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Interning table mapping net names to [`NetId`]s.
///
/// The table always contains the power rails: `"VDD"` (id 0) and `"GND"`
/// (id 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetTable {
    names: Vec<String>,
    by_name: HashMap<String, NetId>,
}

impl NetTable {
    /// Creates a table pre-populated with the `VDD` and `GND` rails.
    pub fn new() -> Self {
        let mut table = NetTable {
            names: Vec::new(),
            by_name: HashMap::new(),
        };
        table.intern("VDD");
        table.intern("GND");
        table
    }

    /// Interns `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NetId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Returns the id for `name` without interning, if it exists.
    pub fn lookup(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: NetId) -> &str {
        &self.names[id.index()]
    }

    /// The positive power rail.
    pub fn vdd(&self) -> NetId {
        NetId(0)
    }

    /// The ground rail.
    pub fn gnd(&self) -> NetId {
        NetId(1)
    }

    /// Returns true if `id` is one of the power rails.
    pub fn is_rail(&self, id: NetId) -> bool {
        id == self.vdd() || id == self.gnd()
    }

    /// Number of interned nets, including the rails.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True only for a table that has somehow lost its rails; a fresh table
    /// is never empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all net ids in creation order.
    pub fn iter(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.names.len() as u32).map(NetId)
    }

    /// Renames an existing net.
    ///
    /// # Panics
    ///
    /// Panics if `old` is absent or `new` is already present.
    pub fn rename(&mut self, old: &str, new: &str) {
        let id = self
            .by_name
            .remove(old)
            .unwrap_or_else(|| panic!("no net named {old}"));
        assert!(
            !self.by_name.contains_key(new),
            "net {new} already exists; rename would merge"
        );
        self.names[id.index()] = new.to_owned();
        self.by_name.insert(new.to_owned(), id);
    }

    /// Creates a fresh internal net with a unique generated name.
    ///
    /// Used by the expression compiler for the intermediate nodes of series
    /// transistor chains.
    pub fn fresh(&mut self, hint: &str) -> NetId {
        let mut i = self.names.len();
        loop {
            let candidate = format!("_{hint}{i}");
            if !self.by_name.contains_key(&candidate) {
                return self.intern(&candidate);
            }
            i += 1;
        }
    }
}

impl Default for NetTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rails_are_preinterned() {
        let nets = NetTable::new();
        assert_eq!(nets.name(nets.vdd()), "VDD");
        assert_eq!(nets.name(nets.gnd()), "GND");
        assert!(nets.is_rail(nets.vdd()));
        assert!(nets.is_rail(nets.gnd()));
        assert_eq!(nets.len(), 2);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut nets = NetTable::new();
        let a = nets.intern("a");
        let b = nets.intern("b");
        assert_ne!(a, b);
        assert_eq!(nets.intern("a"), a);
        assert_eq!(nets.len(), 4);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut nets = NetTable::new();
        assert_eq!(nets.lookup("x"), None);
        let x = nets.intern("x");
        assert_eq!(nets.lookup("x"), Some(x));
    }

    #[test]
    fn fresh_names_are_unique() {
        let mut nets = NetTable::new();
        let f1 = nets.fresh("mid");
        let f2 = nets.fresh("mid");
        assert_ne!(f1, f2);
        assert_ne!(nets.name(f1), nets.name(f2));
    }

    #[test]
    fn fresh_avoids_existing_names() {
        let mut nets = NetTable::new();
        // Pre-intern the name that `fresh` would generate first.
        nets.intern("_mid2");
        let f = nets.fresh("mid");
        assert_ne!(nets.name(f), "_mid2");
    }

    #[test]
    fn ids_round_trip_through_indices() {
        let mut nets = NetTable::new();
        let a = nets.intern("a");
        assert_eq!(NetId::from_index(a.index()), a);
    }

    #[test]
    fn iter_covers_all_nets() {
        let mut nets = NetTable::new();
        nets.intern("a");
        nets.intern("b");
        let ids: Vec<NetId> = nets.iter().collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], nets.vdd());
        assert_eq!(ids[1], nets.gnd());
    }

    #[test]
    fn debug_format_is_compact() {
        let nets = NetTable::new();
        assert_eq!(format!("{:?}", nets.vdd()), "n0");
        assert_eq!(format!("{}", nets.gnd()), "n1");
    }
}
