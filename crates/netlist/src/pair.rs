//! P/N transistor pairing — the placement unit of CLIP.
//!
//! CLIP places *P/N pairs*: one PMOS and one NMOS device driven by the same
//! gate net, drawn in the same layout column (the P device on the P
//! diffusion strip, the N device directly below on the N strip, sharing one
//! vertical poly gate). [`PairedCircuit::from_circuit`] performs the
//! matching; when a gate net drives several P and several N devices (a
//! multi-fanin complex gate, the non-series-parallel bridge), devices are
//! matched **in netlist order**: the k-th P occurrence of a gate pairs with
//! the k-th N occurrence. For complementary networks written in matching
//! traversal order — which includes everything the expression compiler
//! emits — this pairs each device with its structural dual (series chain
//! member with its parallel counterpart), which is what HCLIP's and-stack
//! detection relies on.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::circuit::Circuit;
use crate::device::{Device, DeviceId, DeviceKind};
use crate::net::NetId;

/// Compact handle for a P/N pair within a [`PairedCircuit`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PairId(pub(crate) u32);

impl PairId {
    /// Dense index of this pair.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `PairId` from a dense index.
    pub fn from_index(index: usize) -> Self {
        PairId(index as u32)
    }
}

impl fmt::Debug for PairId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 + 1) // 1-based like the paper's p1..p7
    }
}

impl fmt::Display for PairId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 + 1)
    }
}

/// One matched P/N transistor pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PnPair {
    /// The PMOS member.
    pub p: DeviceId,
    /// The NMOS member.
    pub n: DeviceId,
}

/// The diffusion terminal nets of one side of a pair, under a given flip.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PairTerminals {
    /// Net on the P diffusion strip.
    pub p_net: NetId,
    /// Net on the N diffusion strip.
    pub n_net: NetId,
}

/// A circuit whose devices have been matched into P/N pairs.
///
/// # Example
///
/// ```
/// use clip_netlist::library;
///
/// let paired = library::xor2().into_paired()?;
/// assert_eq!(paired.pairs().len(), 5); // 10-transistor parity cell
/// # Ok::<(), clip_netlist::PairCircuitError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PairedCircuit {
    circuit: Circuit,
    pairs: Vec<PnPair>,
}

impl PairedCircuit {
    /// Matches the devices of `circuit` into P/N pairs.
    ///
    /// Devices are grouped by gate net; within a group, the k-th P device
    /// (in netlist order) pairs with the k-th N device — the structural
    /// dual for complementary networks listed in matching traversal order.
    ///
    /// # Errors
    ///
    /// * [`PairCircuitError::Invalid`] if the circuit fails
    ///   [`Circuit::validate`];
    /// * [`PairCircuitError::GateMismatch`] if some gate net drives a
    ///   different number of P and N devices, which makes a complete pairing
    ///   impossible.
    pub fn from_circuit(circuit: Circuit) -> Result<Self, PairCircuitError> {
        circuit.validate().map_err(PairCircuitError::Invalid)?;

        // Identify gate *instances*: the P pull-up and N pull-down of one
        // complementary gate are the same-polarity diffusion-connectivity
        // components that share a (non-rail) output net. A gate net that
        // drives several instances (an input feeding both an inverter and
        // a complex gate) is then paired per instance, which keeps every
        // device with its structural dual.
        let instance = gate_instances(&circuit);

        let mut by_key: HashMap<(NetId, usize), (Vec<DeviceId>, Vec<DeviceId>)> = HashMap::new();
        for (id, d) in circuit.iter_devices() {
            let entry = by_key.entry((d.gate, instance[id.index()])).or_default();
            match d.kind {
                DeviceKind::P => entry.0.push(id),
                DeviceKind::N => entry.1.push(id),
            }
        }

        let mut keys: Vec<(NetId, usize)> = by_key.keys().copied().collect();
        keys.sort(); // deterministic pair order

        // Per-instance balance can fail only for non-complementary
        // structures; check gate-level balance for the error report.
        for &(gate, _) in &keys {
            let (p, n): (usize, usize) = keys
                .iter()
                .filter(|&&(g, _)| g == gate)
                .map(|k| {
                    let (ps, ns) = &by_key[k];
                    (ps.len(), ns.len())
                })
                .fold((0, 0), |(ap, an), (p, n)| (ap + p, an + n));
            if p != n {
                return Err(PairCircuitError::GateMismatch { gate, p, n });
            }
        }

        let mut pairs = Vec::new();
        let mut leftovers: HashMap<NetId, (Vec<DeviceId>, Vec<DeviceId>)> = HashMap::new();
        for key in keys {
            let (ps, ns) = &by_key[&key];
            // Zip the balanced prefix (creation order = structural duals
            // for complementary networks in matching traversal order).
            let k = ps.len().min(ns.len());
            pairs.extend(ps[..k].iter().zip(&ns[..k]).map(|(&p, &n)| PnPair { p, n }));
            let spill = leftovers.entry(key.0).or_default();
            spill.0.extend_from_slice(&ps[k..]);
            spill.1.extend_from_slice(&ns[k..]);
        }
        // Any per-instance imbalance spills into a per-gate pool (balanced
        // by the check above).
        let mut gates: Vec<NetId> = leftovers.keys().copied().collect();
        gates.sort();
        for gate in gates {
            let (ps, ns) = &leftovers[&gate];
            debug_assert_eq!(ps.len(), ns.len());
            pairs.extend(ps.iter().zip(ns).map(|(&p, &n)| PnPair { p, n }));
        }
        pairs.sort_by_key(|pr| pr.p);

        Ok(PairedCircuit { circuit, pairs })
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// All pairs, indexable by [`PairId::index`].
    pub fn pairs(&self) -> &[PnPair] {
        &self.pairs
    }

    /// Pair lookup.
    pub fn pair(&self, id: PairId) -> &PnPair {
        &self.pairs[id.index()]
    }

    /// Iterates over `(PairId, &PnPair)`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (PairId, &PnPair)> {
        self.pairs
            .iter()
            .enumerate()
            .map(|(i, p)| (PairId::from_index(i), p))
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the circuit had no devices (never the case after a successful
    /// [`PairedCircuit::from_circuit`]).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The gate net of a pair.
    pub fn gate(&self, id: PairId) -> NetId {
        self.circuit.device(self.pair(id).p).gate
    }

    /// The PMOS member device of a pair.
    pub fn p_device(&self, id: PairId) -> &Device {
        self.circuit.device(self.pair(id).p)
    }

    /// The NMOS member device of a pair.
    pub fn n_device(&self, id: PairId) -> &Device {
        self.circuit.device(self.pair(id).n)
    }

    /// Source-side terminals `(Psrc, Nsrc)` of a pair.
    pub fn source_terminals(&self, id: PairId) -> PairTerminals {
        PairTerminals {
            p_net: self.p_device(id).source,
            n_net: self.n_device(id).source,
        }
    }

    /// Drain-side terminals `(Pdrn, Ndrn)` of a pair.
    pub fn drain_terminals(&self, id: PairId) -> PairTerminals {
        PairTerminals {
            p_net: self.p_device(id).drain,
            n_net: self.n_device(id).drain,
        }
    }

    /// All nets touched by any device terminal of pair `id`.
    pub fn touched_nets(&self, id: PairId) -> Vec<NetId> {
        let p = self.p_device(id);
        let n = self.n_device(id);
        let mut nets = vec![p.gate, p.source, p.drain, n.source, n.drain];
        nets.sort();
        nets.dedup();
        nets
    }

    /// Replaces the pair list (used by clustering to install super-pairs).
    ///
    /// # Panics
    ///
    /// Panics if any referenced device id is out of range.
    pub fn with_pairs(circuit: Circuit, pairs: Vec<PnPair>) -> Self {
        for pr in &pairs {
            assert!(pr.p.index() < circuit.devices().len());
            assert!(pr.n.index() < circuit.devices().len());
        }
        PairedCircuit { circuit, pairs }
    }
}

/// Assigns every device a *gate-instance* id.
///
/// Devices of one polarity connected through non-rail diffusion nets form
/// a pull-network component; a P component and an N component that share a
/// non-rail net (the gate's output) belong to the same instance. Returns a
/// per-device instance id (component-pair index); components without a
/// partner get their own id.
fn gate_instances(circuit: &Circuit) -> Vec<usize> {
    let n_dev = circuit.devices().len();
    let n_nets = circuit.nets().len();
    let rails = [circuit.nets().vdd(), circuit.nets().gnd()];

    // Union-find over devices, per polarity, via shared non-rail nets.
    let mut parent: Vec<usize> = (0..n_dev).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut net_owner: HashMap<(NetId, DeviceKind), usize> = HashMap::new();
    for (id, d) in circuit.iter_devices() {
        for t in [d.source, d.drain] {
            if rails.contains(&t) {
                continue;
            }
            match net_owner.get(&(t, d.kind)) {
                Some(&o) => {
                    let (a, b) = (find(&mut parent, id.index()), find(&mut parent, o));
                    if a != b {
                        parent[a] = b;
                    }
                }
                None => {
                    net_owner.insert((t, d.kind), id.index());
                }
            }
        }
    }

    // Nets touched per component.
    let mut comp_nets: HashMap<usize, Vec<usize>> = HashMap::new();
    for (id, d) in circuit.iter_devices() {
        let root = find(&mut parent, id.index());
        let entry = comp_nets.entry(root).or_default();
        for t in [d.source, d.drain] {
            if !rails.contains(&t) && !entry.contains(&t.index()) {
                entry.push(t.index());
            }
        }
    }

    // Match P components to N components sharing a net.
    let mut net_p_comp: Vec<Option<usize>> = vec![None; n_nets];
    for (id, d) in circuit.iter_devices() {
        if d.kind == DeviceKind::P {
            let root = find(&mut parent, id.index());
            for t in [d.source, d.drain] {
                if !rails.contains(&t) {
                    net_p_comp[t.index()] = Some(root);
                }
            }
        }
    }
    // Instance id = canonical root: for N components, the matched P root.
    let mut instance = vec![0usize; n_dev];
    for (id, d) in circuit.iter_devices() {
        let root = find(&mut parent, id.index());
        let canon = if d.kind == DeviceKind::N {
            comp_nets
                .get(&root)
                .and_then(|nets| nets.iter().find_map(|&ni| net_p_comp[ni]))
                .unwrap_or(root)
        } else {
            root
        };
        instance[id.index()] = canon;
    }
    instance
}

/// Problems reported by [`PairedCircuit::from_circuit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PairCircuitError {
    /// The circuit failed structural validation.
    Invalid(crate::circuit::ValidateCircuitError),
    /// A gate net drives different numbers of P and N devices.
    GateMismatch {
        /// The offending gate net.
        gate: NetId,
        /// P devices on this gate.
        p: usize,
        /// N devices on this gate.
        n: usize,
    },
}

impl fmt::Display for PairCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PairCircuitError::Invalid(e) => write!(f, "invalid circuit: {e}"),
            PairCircuitError::GateMismatch { gate, p, n } => {
                write!(f, "gate net {gate} drives {p} P but {n} N devices")
            }
        }
    }
}

impl Error for PairCircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PairCircuitError::Invalid(e) => Some(e),
            PairCircuitError::GateMismatch { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    fn nand2() -> Circuit {
        let mut b = Circuit::builder("nand2");
        let a = b.net("a");
        let c = b.net("b");
        let z = b.net("z");
        let m = b.net("m");
        let (vdd, gnd) = (b.vdd(), b.gnd());
        b.device(DeviceKind::P, a, vdd, z);
        b.device(DeviceKind::P, c, vdd, z);
        b.device(DeviceKind::N, a, z, m);
        b.device(DeviceKind::N, c, m, gnd);
        b.input(a).input(c).output(z);
        b.build()
    }

    #[test]
    fn nand2_pairs_by_gate() {
        let paired = nand2().into_paired().unwrap();
        assert_eq!(paired.len(), 2);
        for (id, _) in paired.iter_pairs() {
            let p = paired.p_device(id);
            let n = paired.n_device(id);
            assert_eq!(p.gate, n.gate);
            assert_eq!(p.kind, DeviceKind::P);
            assert_eq!(n.kind, DeviceKind::N);
        }
    }

    #[test]
    fn pair_order_is_deterministic() {
        let a = nand2().into_paired().unwrap();
        let b = nand2().into_paired().unwrap();
        assert_eq!(a.pairs(), b.pairs());
    }

    #[test]
    fn gate_mismatch_is_reported() {
        let mut b = Circuit::builder("bad");
        let a = b.net("a");
        let c = b.net("b");
        let z = b.net("z");
        let (vdd, gnd) = (b.vdd(), b.gnd());
        b.device(DeviceKind::P, a, vdd, z);
        b.device(DeviceKind::N, c, gnd, z); // different gate
        let err = b.build().into_paired().unwrap_err();
        assert!(matches!(err, PairCircuitError::GateMismatch { .. }));
    }

    #[test]
    fn invalid_circuit_is_reported() {
        let c = Circuit::builder("empty").build();
        assert!(matches!(c.into_paired(), Err(PairCircuitError::Invalid(_))));
    }

    #[test]
    fn multi_fanin_gates_pair_by_gate_instance() {
        // Gate g drives two inverter-like structures with outputs x and y.
        // P and N devices sharing an output net form one gate instance and
        // must pair together, regardless of netlist interleaving.
        let mut b = Circuit::builder("multi");
        let g = b.net("g");
        let x = b.net("x");
        let y = b.net("y");
        let (vdd, gnd) = (b.vdd(), b.gnd());
        let p0 = b.device(DeviceKind::P, g, vdd, x);
        let p1 = b.device(DeviceKind::P, g, vdd, y);
        let n0 = b.device(DeviceKind::N, g, gnd, y);
        let n1 = b.device(DeviceKind::N, g, gnd, x);
        let paired = b.build().into_paired().unwrap();
        let find = |p: DeviceId| paired.pairs().iter().find(|pr| pr.p == p).unwrap().n;
        assert_eq!(find(p0), n1); // both on output x
        assert_eq!(find(p1), n0); // both on output y
    }

    #[test]
    fn terminals_follow_netlist_convention() {
        let paired = nand2().into_paired().unwrap();
        let nets = paired.circuit().nets();
        let p0 = PairId::from_index(0);
        let src = paired.source_terminals(p0);
        assert_eq!(src.p_net, nets.vdd());
        let drn = paired.drain_terminals(p0);
        assert_eq!(nets.name(drn.p_net), "z");
    }

    #[test]
    fn touched_nets_are_deduplicated() {
        let paired = nand2().into_paired().unwrap();
        let p0 = PairId::from_index(0);
        let nets = paired.touched_nets(p0);
        let mut sorted = nets.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(nets, sorted);
        // gate a, P: vdd/z, N: z/m -> {a, vdd, z, m}
        assert_eq!(nets.len(), 4);
    }

    #[test]
    fn pair_ids_display_one_based() {
        assert_eq!(format!("{}", PairId::from_index(0)), "p1");
        assert_eq!(format!("{:?}", PairId::from_index(6)), "p7");
    }
}
