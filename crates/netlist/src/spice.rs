//! Minimal SPICE-subset import/export.
//!
//! CLIP's input in practice is a transistor netlist; this module reads and
//! writes the ubiquitous flat SPICE `M` card format so cells can be
//! exchanged with other tools:
//!
//! ```text
//! * comment
//! M1 z a VDD VDD PMOS
//! M2 z a GND GND NMOS
//! .end
//! ```
//!
//! Card order is `M<name> <drain> <gate> <source> <bulk> <model>`; the model
//! name decides polarity (`P`/`PMOS`/`pch` vs `N`/`NMOS`/`nch`). `.end` and
//! anything after it is ignored. Net names are taken verbatim (`VDD`/`GND`
//! are the rails).

use std::error::Error;
use std::fmt;

use crate::circuit::Circuit;
use crate::device::DeviceKind;

/// Errors from [`parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSpiceError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseSpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "spice parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseSpiceError {}

/// Maximum number of `M` cards [`parse`] accepts. The layout model's
/// size is polynomial in the device count, so an untrusted deck with
/// millions of cards would tie up a solver worker long before any
/// budget check fires; cells are tens of devices, so the cap costs
/// nothing real.
pub const MAX_DEVICES: usize = 1 << 16;

/// Parses a flat SPICE transistor deck into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseSpiceError`] for malformed `M` cards or unknown model
/// polarities. Unknown card types (anything not starting with `M`, `*`,
/// `.`) are errors too — this is deliberately a strict subset. Decks
/// with more than [`MAX_DEVICES`] transistors are rejected.
pub fn parse(name: &str, text: &str) -> Result<Circuit, ParseSpiceError> {
    let mut b = Circuit::builder(name);
    let mut devices = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        if let Some(dot) = line.strip_prefix('.') {
            if dot.to_ascii_lowercase().starts_with("end") {
                break;
            }
            continue; // other dot-cards ignored
        }
        if !line.starts_with(['M', 'm']) {
            return Err(ParseSpiceError {
                line: lineno,
                message: format!("unsupported card: {line}"),
            });
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 6 {
            return Err(ParseSpiceError {
                line: lineno,
                message: "M card needs: name drain gate source bulk model".into(),
            });
        }
        let (drain, gate, source, model) = (fields[1], fields[2], fields[3], fields[5]);
        let kind = polarity(model).ok_or_else(|| ParseSpiceError {
            line: lineno,
            message: format!("unknown model polarity: {model}"),
        })?;
        devices += 1;
        if devices > MAX_DEVICES {
            return Err(ParseSpiceError {
                line: lineno,
                message: format!("more than {MAX_DEVICES} devices"),
            });
        }
        let g = b.net(gate);
        let s = b.net(source);
        let d = b.net(drain);
        b.device(kind, g, s, d);
    }
    Ok(b.build())
}

/// Writes a [`Circuit`] as a flat SPICE deck.
pub fn write(circuit: &Circuit) -> String {
    let nets = circuit.nets();
    let mut out = format!("* {}\n", circuit.name());
    for (id, d) in circuit.iter_devices() {
        let model = match d.kind {
            DeviceKind::P => "PMOS",
            DeviceKind::N => "NMOS",
        };
        let bulk = match d.kind {
            DeviceKind::P => "VDD",
            DeviceKind::N => "GND",
        };
        out.push_str(&format!(
            "M{} {} {} {} {} {}\n",
            id.index() + 1,
            nets.name(d.drain),
            nets.name(d.gate),
            nets.name(d.source),
            bulk,
            model
        ));
    }
    out.push_str(".end\n");
    out
}

fn polarity(model: &str) -> Option<DeviceKind> {
    match model.to_ascii_lowercase().as_str() {
        "p" | "pmos" | "pch" | "pfet" => Some(DeviceKind::P),
        "n" | "nmos" | "nch" | "nfet" => Some(DeviceKind::N),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn parses_an_inverter() {
        let c = parse(
            "inv",
            "* inverter\nM1 z a VDD VDD PMOS\nM2 z a GND GND NMOS\n.end\n",
        )
        .unwrap();
        assert_eq!(c.devices().len(), 2);
        assert!(c.validate().is_ok());
        assert_eq!(c.p_count(), 1);
    }

    #[test]
    fn round_trips_the_library() {
        for original in library::evaluation_suite() {
            let text = write(&original);
            let back = parse(original.name(), &text).unwrap();
            assert_eq!(
                back.devices().len(),
                original.devices().len(),
                "{}",
                original.name()
            );
            // Same device structure modulo net ids: compare rendered form.
            assert_eq!(write(&back), text, "{}", original.name());
        }
    }

    #[test]
    fn rejects_unknown_cards() {
        let err = parse("bad", "R1 a b 100\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unsupported"));
    }

    #[test]
    fn rejects_short_m_cards() {
        let err = parse("bad", "M1 z a GND\n").unwrap_err();
        assert!(err.message.contains("needs"));
    }

    #[test]
    fn rejects_unknown_model() {
        let err = parse("bad", "M1 z a GND GND JFET\n").unwrap_err();
        assert!(err.message.contains("polarity"));
    }

    /// Untrusted-input guard: a deck past the device cap fails with a
    /// structured error instead of building an enormous circuit.
    #[test]
    fn rejects_oversized_decks() {
        let mut deck = String::new();
        for i in 0..=MAX_DEVICES {
            deck.push_str(&format!("M{i} z a GND GND NMOS\n"));
        }
        let err = parse("huge", &deck).unwrap_err();
        assert_eq!(err.line, MAX_DEVICES + 1);
        assert!(err.message.contains("devices"), "{err}");
    }

    #[test]
    fn stops_at_end_card() {
        let c = parse(
            "inv",
            "M1 z a VDD VDD PMOS\nM2 z a GND GND NMOS\n.end\nM3 junk junk junk junk PMOS\n",
        )
        .unwrap();
        assert_eq!(c.devices().len(), 2);
    }

    #[test]
    fn ignores_other_dot_cards_and_case() {
        let c = parse(
            "inv",
            ".title whatever\nm1 z a VDD VDD pch\nm2 z a GND GND nch\n",
        )
        .unwrap();
        assert_eq!(c.devices().len(), 2);
        assert_eq!(c.p_count(), 1);
    }
}
