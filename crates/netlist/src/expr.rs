//! Boolean series-parallel expressions and their compilation to
//! complementary static CMOS networks.
//!
//! The paper's benchmark "2-level implementation of `z = (a'·(e+f)' + d)'`"
//! is exactly what this module builds: [`Expr::parse`] accepts that formula
//! (with `&`/`.`/`*` for AND, `|`/`+` for OR, postfix `'` for NOT) and
//! [`Expr::compile`] turns it into a multi-gate transistor netlist in which
//! every inverting gate becomes one complementary series-parallel network
//! (N pull-down implements the gate function, P pull-up its graph dual) and
//! every internally required complemented signal gets its own inverter.
//!
//! # Example
//!
//! ```
//! use clip_netlist::Expr;
//!
//! let e = Expr::parse("(a'&(e|f)'|d)'")?;
//! let circuit = e.compile("two_level_z", "z")?;
//! // inverter (2T) + NOR2 (4T) + AOI21 (6T) = 12 transistors
//! assert_eq!(circuit.devices().len(), 12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::error::Error;
use std::fmt;

use crate::circuit::{Circuit, CircuitBuilder};
use crate::device::DeviceKind;
use crate::net::NetId;

/// Boolean expression AST.
///
/// `And`/`Or` are n-ary; the parser flattens nested binary applications of
/// the same operator.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// An input variable.
    Var(String),
    /// Logical complement.
    Not(Box<Expr>),
    /// n-ary conjunction.
    And(Vec<Expr>),
    /// n-ary disjunction.
    Or(Vec<Expr>),
}

impl Expr {
    /// Parses an expression.
    ///
    /// Grammar: `expr := term (('|'|'+') term)*`,
    /// `term := atom (('&'|'.'|'*') atom)*`,
    /// `atom := (ident | '(' expr ')') "'"*`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseExprError`] describing the offending byte offset.
    pub fn parse(input: &str) -> Result<Expr, ParseExprError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        let e = p.expr()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(ParseExprError {
                pos: p.pos,
                message: "trailing input".into(),
            });
        }
        Ok(e)
    }

    /// Evaluates the expression under an assignment.
    ///
    /// `lookup` maps variable names to values.
    ///
    /// # Panics
    ///
    /// Panics if `lookup` returns `None` for a variable that occurs in the
    /// expression.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<bool>) -> bool {
        match self {
            Expr::Var(v) => lookup(v).unwrap_or_else(|| panic!("unbound variable {v}")),
            Expr::Not(e) => !e.eval(lookup),
            Expr::And(es) => es.iter().all(|e| e.eval(lookup)),
            Expr::Or(es) => es.iter().any(|e| e.eval(lookup)),
        }
    }

    /// Collects the distinct variable names, in first-occurrence order.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Not(e) => e.collect_vars(out),
            Expr::And(es) | Expr::Or(es) => es.iter().for_each(|e| e.collect_vars(out)),
        }
    }

    /// Compiles the expression into a transistor netlist whose output net
    /// `output` carries the expression's value.
    ///
    /// Every [`Expr::Not`] node becomes one complementary CMOS gate; other
    /// node kinds contribute series/parallel device structure inside the
    /// enclosing gate. A top-level expression that is not a `Not` is
    /// realized as gate + output inverter.
    ///
    /// # Errors
    ///
    /// Returns [`CompileExprError::ConstantExpression`] for expressions with
    /// no variables.
    pub fn compile(&self, name: &str, output: &str) -> Result<Circuit, CompileExprError> {
        if self.variables().is_empty() {
            return Err(CompileExprError::ConstantExpression);
        }
        let mut b = Circuit::builder(name);
        let out_net = b.net(output);
        compile_to(self, &mut b, out_net)?;
        for v in self.variables() {
            let n = b.net(&v);
            b.input(n);
        }
        b.output(out_net);
        Ok(b.build())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Not(e) => match **e {
                Expr::Var(_) => write!(f, "{e}'"),
                _ => write!(f, "({e})'"),
            },
            Expr::And(es) => {
                let parts: Vec<String> = es
                    .iter()
                    .map(|e| match e {
                        Expr::Or(_) => format!("({e})"),
                        _ => format!("{e}"),
                    })
                    .collect();
                write!(f, "{}", parts.join("&"))
            }
            Expr::Or(es) => {
                let parts: Vec<String> = es.iter().map(|e| format!("{e}")).collect();
                write!(f, "{}", parts.join("|"))
            }
        }
    }
}

/// Emits gates computing `expr` onto net `out`.
fn compile_to(expr: &Expr, b: &mut CircuitBuilder, out: NetId) -> Result<(), CompileExprError> {
    match expr {
        Expr::Not(inner) => emit_gate(inner, b, out),
        Expr::Var(_) | Expr::And(_) | Expr::Or(_) => {
            // z = expr == ((expr)')' : complex gate computing (expr)',
            // then an output inverter.
            let mid = b.fresh_net("g");
            emit_gate(expr, b, mid)?;
            emit_inverter(b, mid, out);
            Ok(())
        }
    }
}

/// Emits one complementary gate computing `out = (f)'` where `f` is a
/// series-parallel formula over signals.
fn emit_gate(f: &Expr, b: &mut CircuitBuilder, out: NetId) -> Result<(), CompileExprError> {
    let gnd = b.gnd();
    let vdd = b.vdd();
    // N pull-down implements f between out and GND (AND = series, OR = parallel).
    emit_network(f, b, DeviceKind::N, out, gnd)?;
    // P pull-up implements the dual between VDD and out.
    emit_network(f, b, DeviceKind::P, vdd, out)?;
    Ok(())
}

/// Recursively emits the series-parallel device network for formula `f`
/// between nodes `top` and `bottom`.
///
/// For the N network AND is series / OR is parallel; for the P network the
/// roles swap (graph dual).
fn emit_network(
    f: &Expr,
    b: &mut CircuitBuilder,
    kind: DeviceKind,
    top: NetId,
    bottom: NetId,
) -> Result<(), CompileExprError> {
    match f {
        Expr::Var(v) => {
            let g = b.net(v);
            b.device(kind, g, bottom, top);
            Ok(())
        }
        Expr::Not(inner) => {
            // A complemented signal: compile it as its own sub-gate driving
            // a generated net, then gate a single device with that net.
            let sig = signal_net(inner, b)?;
            b.device(kind, sig, bottom, top);
            Ok(())
        }
        Expr::And(es) => {
            let series = kind == DeviceKind::N;
            emit_composite(es, b, kind, top, bottom, series)
        }
        Expr::Or(es) => {
            let series = kind == DeviceKind::P;
            emit_composite(es, b, kind, top, bottom, series)
        }
    }
}

fn emit_composite(
    es: &[Expr],
    b: &mut CircuitBuilder,
    kind: DeviceKind,
    top: NetId,
    bottom: NetId,
    series: bool,
) -> Result<(), CompileExprError> {
    if es.is_empty() {
        return Err(CompileExprError::EmptyOperator);
    }
    if series {
        let mut lower = bottom;
        for (i, e) in es.iter().enumerate() {
            let upper = if i + 1 == es.len() {
                top
            } else {
                b.fresh_net("m")
            };
            emit_network(e, b, kind, upper, lower)?;
            lower = upper;
        }
    } else {
        for e in es {
            emit_network(e, b, kind, top, bottom)?;
        }
    }
    Ok(())
}

/// Emits a plain inverter: `out = input'`.
fn emit_inverter(b: &mut CircuitBuilder, input: NetId, out: NetId) {
    let (vdd, gnd) = (b.vdd(), b.gnd());
    b.device(DeviceKind::P, input, vdd, out);
    b.device(DeviceKind::N, input, gnd, out);
}

/// Returns the net carrying the value of `Not(inner)` — i.e. compiles the
/// sub-gate `(inner)'` once and names its output after the sub-expression.
fn signal_net(inner: &Expr, b: &mut CircuitBuilder) -> Result<NetId, CompileExprError> {
    // Deterministic name so the same complemented signal is reused.
    let name = match inner {
        Expr::Var(v) => format!("{v}'"),
        other => format!("({other})'"),
    };
    if let Some(existing) = lookup_existing(b, &name) {
        return Ok(existing);
    }
    let out = b.net(&name);
    emit_gate(inner, b, out)?;
    Ok(out)
}

fn lookup_existing(b: &CircuitBuilder, name: &str) -> Option<NetId> {
    b.peek_net(name)
}

/// Errors from [`Expr::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseExprError {
    /// Byte offset of the error.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.message)
    }
}

impl Error for ParseExprError {}

/// Errors from [`Expr::compile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileExprError {
    /// The expression contains no variables.
    ConstantExpression,
    /// An AND/OR node has no operands.
    EmptyOperator,
}

impl fmt::Display for CompileExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileExprError::ConstantExpression => {
                write!(f, "expression has no variables")
            }
            CompileExprError::EmptyOperator => write!(f, "empty AND/OR operand list"),
        }
    }
}

impl Error for CompileExprError {}

/// Maximum parenthesis nesting [`Expr::parse`] accepts. The parser is
/// recursive descent (one stack frame per `(`), so untrusted input with
/// tens of thousands of open parens would overflow the thread stack —
/// an abort no error handling can catch. Real formulas nest a handful
/// of levels; 256 is headroom, not a constraint.
pub const MAX_EXPR_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Open parentheses on the parse stack (see [`MAX_EXPR_DEPTH`]).
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut terms = vec![self.term()?];
        while matches!(self.peek(), Some(b'|') | Some(b'+')) {
            self.pos += 1;
            terms.push(self.term()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("nonempty")
        } else {
            Expr::Or(terms)
        })
    }

    fn term(&mut self) -> Result<Expr, ParseExprError> {
        let mut factors = vec![self.atom()?];
        while matches!(self.peek(), Some(b'&') | Some(b'.') | Some(b'*')) {
            self.pos += 1;
            factors.push(self.atom()?);
        }
        Ok(if factors.len() == 1 {
            factors.pop().expect("nonempty")
        } else {
            Expr::And(factors)
        })
    }

    fn atom(&mut self) -> Result<Expr, ParseExprError> {
        let mut e = match self.peek() {
            Some(b'(') => {
                if self.depth >= MAX_EXPR_DEPTH {
                    return Err(ParseExprError {
                        pos: self.pos,
                        message: format!("nesting deeper than {MAX_EXPR_DEPTH}"),
                    });
                }
                self.depth += 1;
                self.pos += 1;
                let inner = self.expr()?;
                if self.peek() != Some(b')') {
                    return Err(ParseExprError {
                        pos: self.pos,
                        message: "expected ')'".into(),
                    });
                }
                self.pos += 1;
                self.depth -= 1;
                inner
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
                {
                    self.pos += 1;
                }
                Expr::Var(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("ascii slice")
                        .to_owned(),
                )
            }
            _ => {
                return Err(ParseExprError {
                    pos: self.pos,
                    message: "expected variable or '('".into(),
                })
            }
        };
        // Postfix complements; a'' == a.
        while self.peek() == Some(b'\'') {
            self.pos += 1;
            e = match e {
                Expr::Not(inner) => *inner,
                other => Expr::Not(Box::new(other)),
            };
        }
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;

    #[test]
    fn parses_the_paper_formula() {
        let e = Expr::parse("(a'&(e|f)'|d)'").unwrap();
        assert_eq!(e.variables(), vec!["a", "e", "f", "d"]);
        assert_eq!(format!("{e}"), "(a'&(e|f)'|d)'");
    }

    /// Untrusted-input guard: pathological paren nesting must yield a
    /// structured error, not a stack-overflow abort.
    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        let deep = format!("{}a{}", "(".repeat(100_000), ")".repeat(100_000));
        let err = Expr::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // The limit itself parses.
        let ok = format!(
            "{}a{}",
            "(".repeat(MAX_EXPR_DEPTH),
            ")".repeat(MAX_EXPR_DEPTH)
        );
        Expr::parse(&ok).unwrap();
    }

    #[test]
    fn alternative_operator_spellings() {
        let a = Expr::parse("(a'.(e+f)'+d)'").unwrap();
        let b = Expr::parse("(a'&(e|f)'|d)'").unwrap();
        assert_eq!(a, b);
        let c = Expr::parse("a*b").unwrap();
        assert_eq!(c, Expr::parse("a&b").unwrap());
    }

    #[test]
    fn parse_flattens_nary_operators() {
        let e = Expr::parse("a&b&c").unwrap();
        assert_eq!(
            e,
            Expr::And(vec![
                Expr::Var("a".into()),
                Expr::Var("b".into()),
                Expr::Var("c".into())
            ])
        );
    }

    #[test]
    fn double_complement_cancels() {
        assert_eq!(Expr::parse("a''").unwrap(), Expr::Var("a".into()));
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = Expr::parse("a &").unwrap_err();
        assert_eq!(err.pos, 3);
        let err = Expr::parse("(a").unwrap_err();
        assert!(err.message.contains("')'"));
        let err = Expr::parse("a b").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn nand2_compiles_to_four_transistors() {
        let c = Expr::parse("(a&b)'")
            .unwrap()
            .compile("nand2", "z")
            .unwrap();
        assert_eq!(c.devices().len(), 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn two_level_z_is_twelve_transistors() {
        let c = Expr::parse("(a'&(e|f)'|d)'")
            .unwrap()
            .compile("two_level_z", "z")
            .unwrap();
        assert_eq!(c.devices().len(), 12);
        assert!(c.validate().is_ok());
        assert_eq!(c.into_paired().unwrap().len(), 6);
    }

    #[test]
    fn shared_complemented_signal_gets_one_inverter() {
        // s' appears twice but should be generated once.
        let c = Expr::parse("(s'&a | s'&b)'")
            .unwrap()
            .compile("g", "z")
            .unwrap();
        // AOI22-style gate (8T) + single inverter (2T).
        assert_eq!(c.devices().len(), 10);
    }

    #[test]
    fn non_inverting_top_level_gets_output_inverter() {
        let c = Expr::parse("a&b").unwrap().compile("and2", "z").unwrap();
        // NAND2 (4T) + inverter (2T).
        assert_eq!(c.devices().len(), 6);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn constant_expression_is_rejected() {
        // No variables at all is impossible through the parser (it has no
        // constant syntax), so construct directly.
        let e = Expr::And(vec![]);
        assert_eq!(
            e.compile("c", "z").unwrap_err(),
            CompileExprError::ConstantExpression
        );
    }

    /// Exhaustively check that the compiled circuit computes the expression,
    /// for every input assignment, via switch-level simulation.
    fn check_function(src: &str) {
        let e = Expr::parse(src).unwrap();
        let c = e.compile("dut", "z").unwrap();
        let vars = e.variables();
        let z = c.nets().lookup("z").unwrap();
        for bits in 0..(1u32 << vars.len()) {
            let assignment: Vec<(String, bool)> = vars
                .iter()
                .enumerate()
                .map(|(i, v)| (v.clone(), bits & (1 << i) != 0))
                .collect();
            let want = e.eval(&|name| {
                assignment
                    .iter()
                    .find(|(v, _)| v == name)
                    .map(|&(_, val)| val)
            });
            let inputs: Vec<(NetId, bool)> = assignment
                .iter()
                .map(|(v, val)| (c.nets().lookup(v).unwrap(), *val))
                .collect();
            let values = simulate(&c, &inputs).unwrap();
            assert_eq!(
                values.get(&z),
                Some(&want),
                "{src} mismatch at bits {bits:b}"
            );
        }
    }

    #[test]
    fn compiled_circuits_compute_their_expressions() {
        check_function("(a&b)'");
        check_function("(a|b)'");
        check_function("a&b");
        check_function("(a'&(e|f)'|d)'");
        check_function("(a&b|c&d)'");
        check_function("((a|b)&(c|d))'");
        check_function("(a'&b | a&b')'"); // XNOR
    }
}
