//! JSON serialization for [`PipelineTrace`] over [`crate::jsonio`].
//!
//! Schema (optional fields omitted when absent):
//!
//! ```json
//! {"schema": 5,
//!  "stages": [
//!   {"stage": "solve", "rows": 2, "wall_ns": 1234,
//!    "model_vars": 56, "model_constraints": 78,
//!    "classes": {"clause": 60, "amo": 10, "card": 6, "linear": 2},
//!    "solve": {"nodes": 9, "propagations": 10, "conflicts": 1,
//!              "learned": 0, "restarts": 0, "learned_kept": 0,
//!              "learned_deleted": 0, "shared_prunes": 0,
//!              "duration_ns": 1200, "proved_optimal": true,
//!              "stop_reason": "deadline",
//!              "props_by_class": {"clause": 7, "amo": 2, "card": 1, "linear": 0},
//!              "conflicts_by_class": {"clause": 1, "amo": 0, "card": 0, "linear": 0},
//!              "plbd_hist": [3, 1, 0, 0, 0, 0, 0, 0],
//!              "incumbents": [{"at_ns": 3, "objective": 4}]},
//!    "threads": 2, "winner_strategy": "cbj", "tuning": "seed=off",
//!    "shared_prunes": 1, "thread_solves": [{"nodes": 9, "...": "..."}]}
//! ]}
//! ```
//!
//! `threads`, `winner_strategy`, and `shared_prunes` describe parallel
//! search (a portfolio solve, or the best-area sweep's summary record);
//! `thread_solves` carries the per-thread stats breakdown when a stage
//! raced more than one solver. `shared_prunes` inside `solve` defaults to
//! 0 when absent, so traces written before parallel search still parse.
//!
//! The document is versioned: writers emit `"schema":` [`TRACE_SCHEMA`].
//! Version 2 added the per-stage `tuning` stamp (the compact rendering of
//! the applied `TuningPlan`, present only on stages a plan shaped).
//! Version 3 added the constraint-theory fields: the per-stage `classes`
//! histogram (how the model's constraints classify into clause /
//! at-most-one / cardinality / general-linear) and the `props_by_class` /
//! `conflicts_by_class` counters inside solver stats; all three are
//! omitted when empty and default to zero on parse, so older documents
//! keep reading. Version 4 added the modern-CDCL engine counters inside
//! solver stats: `restarts`, `learned_kept`, `learned_deleted`, and the
//! `plbd_hist` array (learned constraints by PLBD bucket 1..=8, last
//! bucket absorbing deeper; omitted when the engine recorded none);
//! all default to zero/empty on parse. Version 5 added the optional
//! `stop_reason` string inside solver stats (`"deadline"`,
//! `"node_budget"`, `"cancelled"`, or `"panicked"` — why an unproved
//! search stopped; omitted when the search ran to completion, `None` on
//! parse when absent). Version 6 added the `"pareto"` stage and its
//! per-point `pareto` array on the stage record: each entry carries the
//! point's objective parameterization (`objective`, `track_pitch`,
//! `diffusion_overhead`, `rail_overhead`, `interrow_weight`), its
//! outcome (`width`/`tracks`/`height`, omitted when the point produced
//! none), and the race flags (`proved`, `reused`, `pruned`,
//! `on_frontier`, optional `dominated_by` index). The parser accepts
//! versions 1 (with or without an explicit `schema` key, since version 1
//! predates the key) through the current version and rejects any other
//! rather than misreading a future layout.
//!
//! Durations are integral nanoseconds, so emit → parse → emit is exact.
//! `clip synth --trace FILE` writes this document, and the bench harness
//! embeds the per-stage objects (via [`stage_to_value`]) in its JSONL.

use std::fmt;
use std::time::Duration;

use clip_core::pipeline::{
    ClassCounts, ConstraintClass, ParetoPointRecord, PipelineTrace, SolveStats, Stage, StageRecord,
    StopReason,
};

use crate::jsonio::{self, Json, JsonError};

/// The trace schema version this crate writes. Version 6 added the
/// Pareto frontier fields (the `"pareto"` stage and its per-point
/// `pareto` array); version 5 added the optional `stop_reason` string
/// inside solver stats; version 4 added the modern-CDCL engine counters
/// (`restarts`, `learned_kept`, `learned_deleted`, `plbd_hist`);
/// version 3 added the constraint-theory fields (`classes`,
/// `props_by_class`, `conflicts_by_class`); version 2 added the
/// per-stage `tuning` stamp; versions 1 (no `schema` key) through 6 are
/// all accepted by [`parse`].
pub const TRACE_SCHEMA: i64 = 6;

/// A trace deserialization failure.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceError {
    /// The text is not valid JSON.
    Json(JsonError),
    /// The JSON does not match the trace schema.
    Schema(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Json(e) => write!(f, "trace: {e}"),
            TraceError::Schema(msg) => write!(f, "trace schema: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<JsonError> for TraceError {
    fn from(e: JsonError) -> Self {
        TraceError::Json(e)
    }
}

fn dur_to_json(d: Duration) -> Json {
    Json::Int(i64::try_from(d.as_nanos()).unwrap_or(i64::MAX))
}

/// Serializes a per-class counter set (`{"clause": n, "amo": n, ...}`).
fn classes_to_value(c: &ClassCounts) -> Json {
    Json::obj(ConstraintClass::ALL.iter().map(|&cl| {
        (
            cl.name(),
            Json::Int(i64::try_from(c.get(cl)).unwrap_or(i64::MAX)),
        )
    }))
}

/// Parses a per-class counter object; unknown keys are rejected so a
/// future class rename cannot be silently dropped.
fn classes_from_value(v: &Json, key: &str) -> Result<ClassCounts, TraceError> {
    let pairs = v
        .as_obj()
        .ok_or_else(|| schema(format!("`{key}` must be an object")))?;
    let mut out = ClassCounts::default();
    for (name, count) in pairs {
        let class = ConstraintClass::from_name(name)
            .ok_or_else(|| schema(format!("`{key}` has unknown class `{name}`")))?;
        let n = count
            .as_u64()
            .ok_or_else(|| schema(format!("`{key}.{name}` must be a non-negative integer")))?;
        out.add_n(class, n);
    }
    Ok(out)
}

fn stats_to_value(s: &SolveStats) -> Json {
    let int = |v: u64| Json::Int(i64::try_from(v).unwrap_or(i64::MAX));
    let mut pairs: Vec<(&'static str, Json)> = vec![
        ("nodes", int(s.nodes)),
        ("propagations", int(s.propagations)),
        ("conflicts", int(s.conflicts)),
        ("learned", int(s.learned)),
        ("restarts", int(s.restarts)),
        ("learned_kept", int(s.learned_kept)),
        ("learned_deleted", int(s.learned_deleted)),
        ("shared_prunes", int(s.shared_prunes)),
        ("duration_ns", dur_to_json(s.duration)),
        ("proved_optimal", Json::Bool(s.proved_optimal)),
    ];
    if let Some(r) = s.stop_reason {
        pairs.push(("stop_reason", Json::Str(r.name().into())));
    }
    if !s.props_by_class.is_empty() {
        pairs.push(("props_by_class", classes_to_value(&s.props_by_class)));
    }
    if !s.conflicts_by_class.is_empty() {
        pairs.push((
            "conflicts_by_class",
            classes_to_value(&s.conflicts_by_class),
        ));
    }
    if !s.plbd_hist.is_empty() {
        pairs.push(("plbd_hist", Json::arr(&s.plbd_hist, |&n| int(n))));
    }
    pairs.push((
        "incumbents",
        Json::arr(&s.incumbents, |&(at, objective)| {
            Json::obj([
                ("at_ns", dur_to_json(at)),
                ("objective", Json::Int(objective)),
            ])
        }),
    ));
    Json::obj(pairs)
}

/// Serializes one Pareto point record (schema-6 `pareto` array entry).
/// Public so the serve daemon's `pareto` op emits frontier points in
/// exactly the trace vocabulary.
pub fn pareto_point_to_value(p: &ParetoPointRecord) -> Json {
    let mut pairs: Vec<(&'static str, Json)> = vec![
        ("objective", Json::Str(p.objective.clone())),
        ("track_pitch", Json::Int(p.track_pitch as i64)),
        ("diffusion_overhead", Json::Int(p.diffusion_overhead as i64)),
        ("rail_overhead", Json::Int(p.rail_overhead as i64)),
        ("interrow_weight", Json::Int(p.interrow_weight)),
    ];
    if let Some(w) = p.width {
        pairs.push(("width", Json::Int(w as i64)));
    }
    if let Some(t) = p.tracks {
        pairs.push(("tracks", Json::Int(t as i64)));
    }
    if let Some(h) = p.height {
        pairs.push(("height", Json::Int(h as i64)));
    }
    pairs.push(("proved", Json::Bool(p.proved)));
    pairs.push(("reused", Json::Bool(p.reused)));
    pairs.push(("pruned", Json::Bool(p.pruned)));
    pairs.push(("on_frontier", Json::Bool(p.on_frontier)));
    if let Some(d) = p.dominated_by {
        pairs.push(("dominated_by", Json::Int(d as i64)));
    }
    Json::obj(pairs)
}

/// Parses one Pareto point record.
fn pareto_point_from_value(v: &Json) -> Result<ParetoPointRecord, TraceError> {
    let count = |key: &str| -> Result<usize, TraceError> {
        req(v, key)?
            .as_usize()
            .ok_or_else(|| schema(format!("`{key}` must be a non-negative integer")))
    };
    let opt_usize = |key: &str| -> Result<Option<usize>, TraceError> {
        match v.get(key) {
            None => Ok(None),
            Some(f) => f
                .as_usize()
                .map(Some)
                .ok_or_else(|| schema(format!("`{key}` must be a non-negative integer"))),
        }
    };
    let flag = |key: &str| -> Result<bool, TraceError> {
        req(v, key)?
            .as_bool()
            .ok_or_else(|| schema(format!("`{key}` must be a boolean")))
    };
    Ok(ParetoPointRecord {
        objective: req(v, "objective")?
            .as_str()
            .ok_or_else(|| schema("`objective` must be a string"))?
            .to_string(),
        track_pitch: count("track_pitch")?,
        diffusion_overhead: count("diffusion_overhead")?,
        rail_overhead: count("rail_overhead")?,
        interrow_weight: req(v, "interrow_weight")?
            .as_i64()
            .ok_or_else(|| schema("`interrow_weight` must be an integer"))?,
        width: opt_usize("width")?,
        tracks: opt_usize("tracks")?,
        height: opt_usize("height")?,
        proved: flag("proved")?,
        reused: flag("reused")?,
        pruned: flag("pruned")?,
        on_frontier: flag("on_frontier")?,
        dominated_by: opt_usize("dominated_by")?,
    })
}

/// Serializes one stage record as a JSON object. Reused by the bench
/// harness to embed per-stage fields in its JSONL lines.
pub fn stage_to_value(rec: &StageRecord) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![
        ("stage".into(), Json::Str(rec.stage.name().into())),
        ("wall_ns".into(), dur_to_json(rec.wall)),
    ];
    if let Some(rows) = rec.rows {
        pairs.insert(1, ("rows".into(), Json::Int(rows as i64)));
    }
    if let Some(v) = rec.model_vars {
        pairs.push(("model_vars".into(), Json::Int(v as i64)));
    }
    if let Some(c) = rec.model_constraints {
        pairs.push(("model_constraints".into(), Json::Int(c as i64)));
    }
    if let Some(c) = &rec.classes {
        pairs.push(("classes".into(), classes_to_value(c)));
    }
    if let Some(s) = &rec.solve {
        pairs.push(("solve".into(), stats_to_value(s)));
    }
    if let Some(t) = rec.threads {
        pairs.push(("threads".into(), Json::Int(t as i64)));
    }
    if let Some(w) = &rec.winner_strategy {
        pairs.push(("winner_strategy".into(), Json::Str(w.clone())));
    }
    if let Some(t) = &rec.tuning {
        pairs.push(("tuning".into(), Json::Str(t.clone())));
    }
    if let Some(p) = rec.shared_prunes {
        pairs.push((
            "shared_prunes".into(),
            Json::Int(i64::try_from(p).unwrap_or(i64::MAX)),
        ));
    }
    if !rec.thread_solves.is_empty() {
        pairs.push((
            "thread_solves".into(),
            Json::arr(&rec.thread_solves, stats_to_value),
        ));
    }
    if let Some(points) = &rec.pareto {
        pairs.push(("pareto".into(), Json::arr(points, pareto_point_to_value)));
    }
    Json::Obj(pairs)
}

/// Serializes a whole trace as a JSON value (schema [`TRACE_SCHEMA`]).
pub fn to_value(trace: &PipelineTrace) -> Json {
    Json::obj([
        ("schema", Json::Int(TRACE_SCHEMA)),
        ("stages", Json::arr(&trace.stages, stage_to_value)),
    ])
}

/// Serializes a whole trace as a pretty-printed JSON document.
pub fn to_json(trace: &PipelineTrace) -> String {
    to_value(trace).to_pretty()
}

fn schema(msg: impl Into<String>) -> TraceError {
    TraceError::Schema(msg.into())
}

fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json, TraceError> {
    v.get(key).ok_or_else(|| schema(format!("missing `{key}`")))
}

fn dur_from(v: &Json, key: &str) -> Result<Duration, TraceError> {
    v.as_u64()
        .map(Duration::from_nanos)
        .ok_or_else(|| schema(format!("`{key}` must be a non-negative integer")))
}

fn stats_from_value(v: &Json) -> Result<SolveStats, TraceError> {
    let count = |key: &str| -> Result<u64, TraceError> {
        req(v, key)?
            .as_u64()
            .ok_or_else(|| schema(format!("`{key}` must be a non-negative integer")))
    };
    let incumbents = req(v, "incumbents")?
        .as_arr()
        .ok_or_else(|| schema("`incumbents` must be an array"))?
        .iter()
        .map(|inc| {
            let at = dur_from(req(inc, "at_ns")?, "at_ns")?;
            let objective = req(inc, "objective")?
                .as_i64()
                .ok_or_else(|| schema("`objective` must be an integer"))?;
            Ok((at, objective))
        })
        .collect::<Result<Vec<_>, TraceError>>()?;
    // Absent in traces written before parallel search: default to 0.
    let shared_prunes = match v.get("shared_prunes") {
        None => 0,
        Some(f) => f
            .as_u64()
            .ok_or_else(|| schema("`shared_prunes` must be a non-negative integer"))?,
    };
    // Absent in pre-modern-engine (schema ≤ 3) traces: default to 0.
    let opt_count = |key: &str| -> Result<u64, TraceError> {
        match v.get(key) {
            None => Ok(0),
            Some(f) => f
                .as_u64()
                .ok_or_else(|| schema(format!("`{key}` must be a non-negative integer"))),
        }
    };
    let plbd_hist = match v.get("plbd_hist") {
        None => Vec::new(),
        Some(arr) => arr
            .as_arr()
            .ok_or_else(|| schema("`plbd_hist` must be an array"))?
            .iter()
            .map(|n| {
                n.as_u64()
                    .ok_or_else(|| schema("`plbd_hist` entries must be non-negative integers"))
            })
            .collect::<Result<Vec<_>, TraceError>>()?,
    };
    // Absent in pre-theory (schema ≤ 2) traces: default to all-zero.
    let by_class = |key: &str| -> Result<ClassCounts, TraceError> {
        match v.get(key) {
            None => Ok(ClassCounts::default()),
            Some(f) => classes_from_value(f, key),
        }
    };
    // Absent in schema ≤ 4 traces and on completed searches: stays `None`.
    let stop_reason = match v.get("stop_reason") {
        None => None,
        Some(r) => {
            let name = r
                .as_str()
                .ok_or_else(|| schema("`stop_reason` must be a string"))?;
            Some(
                StopReason::from_name(name)
                    .ok_or_else(|| schema(format!("unknown stop reason `{name}`")))?,
            )
        }
    };
    Ok(SolveStats {
        nodes: count("nodes")?,
        propagations: count("propagations")?,
        conflicts: count("conflicts")?,
        learned: count("learned")?,
        restarts: opt_count("restarts")?,
        learned_kept: opt_count("learned_kept")?,
        learned_deleted: opt_count("learned_deleted")?,
        plbd_hist,
        shared_prunes,
        duration: dur_from(req(v, "duration_ns")?, "duration_ns")?,
        proved_optimal: req(v, "proved_optimal")?
            .as_bool()
            .ok_or_else(|| schema("`proved_optimal` must be a boolean"))?,
        props_by_class: by_class("props_by_class")?,
        conflicts_by_class: by_class("conflicts_by_class")?,
        stop_reason,
        incumbents,
    })
}

fn stage_from_value(v: &Json) -> Result<StageRecord, TraceError> {
    let name = req(v, "stage")?
        .as_str()
        .ok_or_else(|| schema("`stage` must be a string"))?;
    let stage = Stage::from_name(name).ok_or_else(|| schema(format!("unknown stage `{name}`")))?;
    let opt_usize = |key: &str| -> Result<Option<usize>, TraceError> {
        match v.get(key) {
            None => Ok(None),
            Some(f) => f
                .as_usize()
                .map(Some)
                .ok_or_else(|| schema(format!("`{key}` must be a non-negative integer"))),
        }
    };
    let winner_strategy = match v.get("winner_strategy") {
        None => None,
        Some(w) => Some(
            w.as_str()
                .ok_or_else(|| schema("`winner_strategy` must be a string"))?
                .to_string(),
        ),
    };
    let shared_prunes = match v.get("shared_prunes") {
        None => None,
        Some(p) => Some(
            p.as_u64()
                .ok_or_else(|| schema("`shared_prunes` must be a non-negative integer"))?,
        ),
    };
    let thread_solves = match v.get("thread_solves") {
        None => Vec::new(),
        Some(arr) => arr
            .as_arr()
            .ok_or_else(|| schema("`thread_solves` must be an array"))?
            .iter()
            .map(stats_from_value)
            .collect::<Result<Vec<_>, TraceError>>()?,
    };
    // Absent in schema-1 traces (and on untuned stages): stays `None`.
    let tuning = match v.get("tuning") {
        None => None,
        Some(t) => Some(
            t.as_str()
                .ok_or_else(|| schema("`tuning` must be a string"))?
                .to_string(),
        ),
    };
    // Absent before schema 6 (and on non-pareto stages): stays `None`.
    let pareto = match v.get("pareto") {
        None => None,
        Some(arr) => Some(
            arr.as_arr()
                .ok_or_else(|| schema("`pareto` must be an array"))?
                .iter()
                .map(pareto_point_from_value)
                .collect::<Result<Vec<_>, TraceError>>()?,
        ),
    };
    Ok(StageRecord {
        stage,
        rows: opt_usize("rows")?,
        wall: dur_from(req(v, "wall_ns")?, "wall_ns")?,
        model_vars: opt_usize("model_vars")?,
        model_constraints: opt_usize("model_constraints")?,
        classes: v
            .get("classes")
            .map(|c| classes_from_value(c, "classes"))
            .transpose()?,
        solve: v.get("solve").map(stats_from_value).transpose()?,
        threads: opt_usize("threads")?,
        winner_strategy,
        shared_prunes,
        thread_solves,
        tuning,
        pareto,
    })
}

/// Reconstructs a trace from its JSON value. Accepts the current schema
/// version and version 1 (which predates the `schema` key, so a missing
/// key means 1); any other version is rejected.
///
/// # Errors
///
/// [`TraceError::Schema`] when the value does not match the schema.
pub fn from_value(v: &Json) -> Result<PipelineTrace, TraceError> {
    match v.get("schema") {
        None => {} // version 1: written before the key existed
        Some(s) => {
            let version = s
                .as_i64()
                .ok_or_else(|| schema("`schema` must be an integer"))?;
            if !(1..=TRACE_SCHEMA).contains(&version) {
                return Err(schema(format!(
                    "unsupported trace schema version {version} (supported: 1..={TRACE_SCHEMA})"
                )));
            }
        }
    }
    let stages = req(v, "stages")?
        .as_arr()
        .ok_or_else(|| schema("`stages` must be an array"))?
        .iter()
        .map(stage_from_value)
        .collect::<Result<Vec<_>, TraceError>>()?;
    Ok(PipelineTrace { stages })
}

/// Parses a serialized trace document.
///
/// # Errors
///
/// [`TraceError::Json`] on malformed JSON, [`TraceError::Schema`] on a
/// well-formed document that is not a trace.
pub fn parse(text: &str) -> Result<PipelineTrace, TraceError> {
    from_value(&jsonio::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_core::generator::{CellGenerator, GenOptions};
    use clip_netlist::library;

    #[test]
    fn real_generated_trace_round_trips() {
        let cell = CellGenerator::new(GenOptions::rows(2).with_time_limit(Duration::from_secs(30)))
            .generate(library::xor2())
            .unwrap();
        assert!(!cell.trace.stages.is_empty());
        // The pipeline recorded a solve with its incumbent trajectory.
        let solve = cell
            .trace
            .stages
            .iter()
            .find(|s| s.stage == Stage::Solve)
            .expect("solve stage recorded");
        let stats = solve.solve.as_ref().expect("solver stats recorded");
        assert!(!stats.incumbents.is_empty());
        assert!(solve.model_vars.is_some() && solve.model_constraints.is_some());
        // Schema-3 theory fields: the class histogram and the per-class
        // propagation attribution ride on the solve stage.
        let classes = solve.classes.as_ref().expect("class histogram recorded");
        assert!(!classes.is_empty());
        assert_eq!(stats.props_by_class.total(), stats.propagations);

        let text = to_json(&cell.trace);
        let back = parse(&text).unwrap();
        assert_eq!(back, cell.trace);
        // Emit → parse → emit is stable.
        assert_eq!(to_json(&back), text);
    }

    #[test]
    fn sweep_trace_round_trips_with_row_stamps() {
        let cell = CellGenerator::new(GenOptions::rows(1).with_time_limit(Duration::from_secs(30)))
            .generate_best_area(library::xor2(), 3)
            .unwrap();
        let rows_seen: Vec<usize> = cell.trace.stages.iter().filter_map(|s| s.rows).collect();
        assert!(rows_seen.contains(&1) && rows_seen.contains(&3));
        let back = parse(&to_json(&cell.trace)).unwrap();
        assert_eq!(back, cell.trace);
    }

    #[test]
    fn parallel_traces_round_trip_with_thread_fields() {
        let jobs = std::num::NonZeroUsize::new(2).unwrap();
        let cell = CellGenerator::new(
            GenOptions::rows(2)
                .with_time_limit(Duration::from_secs(30))
                .with_jobs(jobs),
        )
        .generate(library::xor2())
        .unwrap();
        let solve = cell
            .trace
            .stages
            .iter()
            .find(|s| s.stage == Stage::Solve)
            .expect("solve stage recorded");
        assert_eq!(solve.threads, Some(2));
        assert!(solve.winner_strategy.is_some());
        assert_eq!(solve.thread_solves.len(), 2);
        let text = to_json(&cell.trace);
        assert!(text.contains("winner_strategy") && text.contains("thread_solves"));
        let back = parse(&text).unwrap();
        assert_eq!(back, cell.trace);
        assert_eq!(to_json(&back), text);
        // A sweep trace ends with the summary record carrying the fan-out.
        let sweep = CellGenerator::new(
            GenOptions::rows(1)
                .with_time_limit(Duration::from_secs(30))
                .with_explicit_jobs(jobs),
        )
        .generate_best_area(library::xor2(), 3)
        .unwrap();
        let back = parse(&to_json(&sweep.trace)).unwrap();
        assert_eq!(back, sweep.trace);
        let last = back.stages.last().unwrap();
        assert_eq!(last.stage, Stage::Sweep);
        assert_eq!(last.threads, Some(2));
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(matches!(parse("not json"), Err(TraceError::Json(_))));
        assert!(matches!(parse("{}"), Err(TraceError::Schema(_))));
        assert!(matches!(
            parse(r#"{"stages":[{"stage":"warp","wall_ns":1}]}"#),
            Err(TraceError::Schema(_))
        ));
        assert!(matches!(
            parse(r#"{"stages":[{"stage":"solve","wall_ns":-5}]}"#),
            Err(TraceError::Schema(_))
        ));
    }

    #[test]
    fn schema_versions_are_enforced() {
        // Writers stamp the current version as the first key.
        let text = to_json(&PipelineTrace::default());
        assert!(
            text.trim_start().starts_with("{\n  \"schema\": 6"),
            "{text}"
        );
        // Version 1 parses with or without an explicit schema key.
        parse(r#"{"stages":[]}"#).unwrap();
        parse(r#"{"schema":1,"stages":[]}"#).unwrap();
        parse(r#"{"schema":2,"stages":[]}"#).unwrap();
        parse(r#"{"schema":3,"stages":[]}"#).unwrap();
        parse(r#"{"schema":4,"stages":[]}"#).unwrap();
        parse(r#"{"schema":5,"stages":[]}"#).unwrap();
        parse(r#"{"schema":6,"stages":[]}"#).unwrap();
        // Unknown versions are rejected, not misread.
        let err = parse(r#"{"schema":99,"stages":[]}"#).unwrap_err();
        assert!(
            matches!(&err, TraceError::Schema(m) if m.contains("99")),
            "{err}"
        );
        assert!(matches!(
            parse(r#"{"schema":"two","stages":[]}"#),
            Err(TraceError::Schema(_))
        ));
    }

    #[test]
    fn class_fields_round_trip_and_reject_unknown_names() {
        let mut rec = StageRecord::new(Stage::ModelBuild, None);
        let mut h = ClassCounts::default();
        h.add_n(ConstraintClass::Clause, 5);
        h.add_n(ConstraintClass::Cardinality, 2);
        rec.classes = Some(h);
        let trace = PipelineTrace { stages: vec![rec] };
        let text = to_json(&trace);
        assert!(text.contains("\"classes\""), "{text}");
        assert_eq!(parse(&text).unwrap(), trace);
        assert_eq!(to_json(&parse(&text).unwrap()), text);
        // Unknown class names are rejected, not silently dropped.
        let bad =
            r#"{"schema":3,"stages":[{"stage":"model_build","wall_ns":1,"classes":{"frob":1}}]}"#;
        assert!(matches!(parse(bad), Err(TraceError::Schema(_))));
    }

    /// Schema-5 field: an unproved stage's stop reason survives the
    /// round trip, is omitted when absent, and unknown names are
    /// rejected rather than silently dropped.
    #[test]
    fn stop_reasons_round_trip_and_reject_unknown_names() {
        let mut rec = StageRecord::new(Stage::Solve, Some(2));
        rec.solve = Some(SolveStats {
            stop_reason: Some(StopReason::Deadline),
            ..Default::default()
        });
        let trace = PipelineTrace { stages: vec![rec] };
        let text = to_json(&trace);
        assert!(text.contains("\"stop_reason\": \"deadline\""), "{text}");
        assert_eq!(parse(&text).unwrap(), trace);
        assert_eq!(to_json(&parse(&text).unwrap()), text);
        // Completed searches omit the key entirely.
        let mut rec = StageRecord::new(Stage::Solve, None);
        rec.solve = Some(SolveStats::default());
        let text = to_json(&PipelineTrace { stages: vec![rec] });
        assert!(!text.contains("stop_reason"), "{text}");
        // Unknown reasons are a schema error.
        let bad = r#"{"schema":5,"stages":[{"stage":"solve","wall_ns":1,
            "solve":{"nodes":0,"propagations":0,"conflicts":0,"learned":0,
                     "duration_ns":0,"proved_optimal":false,
                     "stop_reason":"warp","incumbents":[]}}]}"#;
        assert!(matches!(parse(bad), Err(TraceError::Schema(_))));
    }

    /// Schema-6 fields: a frontier race's per-point records survive the
    /// round trip, optional outcome fields are omitted when the point
    /// produced none, and malformed entries are rejected.
    #[test]
    fn pareto_records_round_trip() {
        let mut rec = StageRecord::new(Stage::Pareto, None);
        rec.threads = Some(2);
        rec.shared_prunes = Some(3);
        rec.pareto = Some(vec![
            ParetoPointRecord {
                objective: "width-height".into(),
                track_pitch: 1,
                diffusion_overhead: 2,
                rail_overhead: 2,
                interrow_weight: 0,
                width: Some(4),
                tracks: Some(1),
                height: Some(7),
                proved: true,
                reused: false,
                pruned: false,
                on_frontier: true,
                dominated_by: None,
            },
            ParetoPointRecord {
                objective: "height-width".into(),
                track_pitch: 2,
                diffusion_overhead: 1,
                rail_overhead: 2,
                interrow_weight: 0,
                width: None,
                tracks: None,
                height: None,
                proved: false,
                reused: true,
                pruned: true,
                on_frontier: false,
                dominated_by: Some(0),
            },
        ]);
        let trace = PipelineTrace { stages: vec![rec] };
        let text = to_json(&trace);
        assert!(text.contains("\"pareto\""), "{text}");
        assert!(text.contains("\"on_frontier\""), "{text}");
        assert!(text.contains("\"dominated_by\": 0"), "{text}");
        assert_eq!(parse(&text).unwrap(), trace);
        assert_eq!(to_json(&parse(&text).unwrap()), text);
        // A valueless point omits its outcome keys entirely.
        assert!(!text.contains("\"width\": null"), "{text}");
        // Malformed point entries are a schema error, not a silent drop.
        let bad = r#"{"schema":6,"stages":[{"stage":"pareto","wall_ns":1,
            "pareto":[{"objective":7}]}]}"#;
        assert!(matches!(parse(bad), Err(TraceError::Schema(_))));
    }

    #[test]
    fn tuning_stamps_round_trip() {
        let mut rec = StageRecord::new(Stage::Solve, Some(2));
        rec.tuning = Some("key=small-sparse-deep-flat seed=off".into());
        let trace = PipelineTrace { stages: vec![rec] };
        let text = to_json(&trace);
        assert!(text.contains("\"tuning\""), "{text}");
        assert_eq!(parse(&text).unwrap(), trace);
    }
}
