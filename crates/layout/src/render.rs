//! ASCII sticks rendering.
//!
//! Each P/N row renders as three strips — P diffusion, poly gates, N
//! diffusion — with one fixed-width cell per *physical* column. Diffusion
//! gaps appear as `:` separators; merged boundaries are seamless. Channel
//! tracks render underneath each row as horizontal runs labelled with the
//! net name:
//!
//! ```text
//! == VDD ==============================
//! P: VDD  .z   VDD
//! G:      a         b
//! N: GND  .m   .z
//!    --a-------        (track 1)
//! == GND ==============================
//! ```

use clip_route::leftedge::Track;
use clip_route::row::{PlacedRow, Strip};

use crate::CellLayout;

/// Width of one rendered column cell, in characters.
const CELL: usize = 6;

/// Renders the full cell.
pub fn render(layout: &CellLayout) -> String {
    let total_cols = layout
        .rows
        .iter()
        .map(PlacedRow::physical_columns)
        .max()
        .unwrap_or(0);
    let line_len = total_cols * CELL + 4;
    let mut out = String::new();
    out.push_str(&format!(
        "cell {} — width {} pitches, height {} tracks-units\n",
        layout.name, layout.width, layout.height
    ));
    out.push_str(&rail_line("VDD", line_len));
    for (r, row) in layout.rows.iter().enumerate() {
        out.push_str(&render_row(layout, row));
        out.push_str(&render_channel(
            layout,
            &layout.intra_channels[r],
            "channel",
        ));
        if r + 1 < layout.rows.len() {
            out.push_str(&render_channel(
                layout,
                &layout.inter_channels[r],
                "inter-row",
            ));
        }
    }
    out.push_str(&rail_line("GND", line_len));
    out
}

fn rail_line(label: &str, len: usize) -> String {
    let mut s = format!("== {label} ");
    while s.len() < len {
        s.push('=');
    }
    s.push('\n');
    s
}

/// Renders one row's three strips.
fn render_row(layout: &CellLayout, row: &PlacedRow) -> String {
    let cols = row.physical_columns();
    let mut p_line = vec![String::new(); cols];
    let mut g_line = vec![String::new(); cols];
    let mut n_line = vec![String::new(); cols];
    for anchor in row.anchors() {
        let name = clip(layout.net_name(anchor.net));
        let slot = match anchor.strip {
            Strip::P => &mut p_line,
            Strip::Poly => &mut g_line,
            Strip::N => &mut n_line,
        };
        // Merged columns receive the same net from both sides; keep one.
        if slot[anchor.column].is_empty() {
            slot[anchor.column] = name;
        }
    }
    // Mark gaps: a non-merged boundary renders a ':' in all three strips
    // at the column boundary position.
    let mut gap_after = vec![false; cols];
    {
        let merged = row.merged();
        for (s, &m) in merged.iter().enumerate() {
            if !m {
                // Right diffusion column of slot s.
                let col = row.physical_column(3 * s + 2);
                gap_after[col] = true;
            }
        }
    }
    let fmt_strip = |label: &str, cells: &[String]| {
        let mut line = format!("{label}: ");
        for (c, cell) in cells.iter().enumerate() {
            let sep = if gap_after[c] { ':' } else { ' ' };
            line.push_str(&format!("{cell:<w$}{sep}", w = CELL - 1));
        }
        line.trim_end().to_owned() + "\n"
    };
    format!(
        "{}{}{}",
        fmt_strip("P", &p_line),
        fmt_strip("G", &g_line),
        fmt_strip("N", &n_line)
    )
}

/// Renders a routed channel: one line per track.
fn render_channel(layout: &CellLayout, tracks: &[Track], label: &str) -> String {
    if tracks.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    for (t, track) in tracks.iter().enumerate() {
        let mut line = format!("   {label} t{}: ", t + 1);
        let base = line.len();
        for &(net, span) in track {
            let start = base + span.lo * CELL;
            while line.len() < start {
                line.push(' ');
            }
            let width = (span.hi - span.lo + 1) * CELL - 1;
            let name = clip(layout.net_name(net));
            let mut run = String::new();
            run.push('|');
            run.push_str(&name);
            while run.len() < width {
                run.push('-');
            }
            run.truncate(width.max(2) - 1);
            run.push('|');
            line.push_str(&run);
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Truncates a net name to fit a rendered cell.
fn clip(name: &str) -> String {
    let mut s: String = name.chars().take(CELL - 2).collect();
    if s.len() < name.chars().count() {
        s.pop();
        s.push('~');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellLayout;
    use clip_core::generator::{CellGenerator, GenOptions};
    use clip_netlist::library;

    fn render_cell(circuit: clip_netlist::Circuit, rows: usize) -> String {
        let cell = CellGenerator::new(GenOptions::rows(rows))
            .generate(circuit)
            .unwrap();
        CellLayout::build(&cell).render()
    }

    #[test]
    fn nand2_renders_three_strips_and_rails() {
        let art = render_cell(library::nand2(), 1);
        assert!(art.contains("== VDD"));
        assert!(art.contains("== GND"));
        assert_eq!(art.matches("P: ").count(), 1);
        assert_eq!(art.matches("G: ").count(), 1);
        assert_eq!(art.matches("N: ").count(), 1);
    }

    #[test]
    fn multi_row_renders_inter_channels() {
        let art = render_cell(library::mux21(), 3);
        assert_eq!(art.matches("P: ").count(), 3);
        // The mux in 3 rows has crossing nets, so at least one inter-row
        // track line renders.
        assert!(art.contains("inter-row"));
    }

    #[test]
    fn gaps_render_as_colons() {
        // two_level_z in one row has exactly one gap (width 7 = 6 pairs+1).
        let art = render_cell(library::two_level_z(), 1);
        let p_line = art.lines().find(|l| l.starts_with("P: ")).unwrap();
        assert!(p_line.contains(':'), "{p_line}");
    }

    #[test]
    fn long_names_are_clipped() {
        assert_eq!(clip("abcd"), "abcd");
        let clipped = clip("abcdefghij");
        assert!(clipped.len() <= CELL - 2);
        assert!(clipped.ends_with('~'));
    }
}
