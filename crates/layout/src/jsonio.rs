//! A small, complete JSON value model with emitter and parser.
//!
//! Part of the workspace's hermetic-dependencies policy (`DESIGN.md`):
//! the one place the repo needs JSON — the machine-readable cell export
//! in [`crate::json`] and the bench harness's JSONL results — is served
//! by this ~300-line module instead of `serde_json`.
//!
//! Supported: the full JSON grammar (RFC 8259) minus non-finite floats.
//! Numbers parse as [`Json::Int`] when they are exact integers in `i64`
//! range and as [`Json::Float`] otherwise. Object key order is
//! preserved (insertion order), which keeps emit → parse → emit stable.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number.
    Int(i64),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds an array by mapping `items`.
    pub fn arr<T>(items: impl IntoIterator<Item = T>, f: impl Fn(T) -> Json) -> Json {
        Json::Arr(items.into_iter().map(f).collect())
    }

    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `usize`, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match *self {
            Json::Int(v) => usize::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if this is any number (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                // JSON has no NaN/Inf; clamp to null like serde_json's
                // lossy mode would reject — we emit null loudly instead.
                if v.is_finite() {
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                    items[i].write(out, indent, lvl);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, level, '{', '}', pairs.len(), |out, i, lvl| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, lvl);
                });
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. The recursive-descent
/// parser uses one stack frame per `[`/`{` level, so untrusted input —
/// the serve daemon feeds client bytes straight into [`parse`] — could
/// otherwise overflow the thread stack with a few thousand open
/// brackets; overflow aborts the whole process, which no `catch_unwind`
/// can contain. Every document this workspace writes nests single-digit
/// deep, so 128 is generous headroom, not a real ceiling.
pub const MAX_DEPTH: usize = 128;

/// A parse failure with byte offset, line/column context, and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// 1-based line of the failure (lines split on `\n`).
    pub line: usize,
    /// 1-based column of the failure, in bytes from the line start.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON error at byte {} (line {}, column {}): {}",
            self.offset, self.line, self.column, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value plus trailing whitespace).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Open `[`/`{` containers on the parse stack (see [`MAX_DEPTH`]).
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + consumed.iter().filter(|&&b| b == b'\n').count();
        let line_start = consumed
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |i| i + 1);
        JsonError {
            offset: self.pos,
            line,
            column: 1 + self.pos - line_start,
            message: message.into(),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        self.depth += 1;
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        let mut seen: BTreeMap<String, ()> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            self.pos -= 1;
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)));
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so
                    // slicing at char boundaries is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input is valid UTF-8");
                    out.push_str(chunk);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pair handling for astral-plane characters.
        if (0xD800..0xDC00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| self.err("invalid code point"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid code point"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digit_start = self.pos;
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[digit_start] == b'0' {
            return Err(self.err("leading zero in number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digits"));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        assert_eq!(&parse(&v.to_compact()).unwrap(), v);
        assert_eq!(&parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Float(1.5),
            Json::Float(-0.25),
            Json::Float(1e100),
            Json::Str(String::new()),
            Json::Str("plain".into()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "quote:\" backslash:\\ newline:\n tab:\t cr:\r \
                     bell:\u{7} nul:\u{0} unicode:héllo 日本 emoji:🦀";
        let v = Json::Str(nasty.to_owned());
        roundtrip(&v);
        let emitted = v.to_compact();
        assert!(emitted.contains("\\\""));
        assert!(emitted.contains("\\\\"));
        assert!(emitted.contains("\\n"));
        assert!(emitted.contains("\\u0000"));
        assert!(emitted.contains("🦀"), "non-ASCII passes through raw");
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        // Surrogate pair for 🦀 (U+1F980).
        assert_eq!(parse(r#""🦀""#).unwrap(), Json::Str("🦀".into()));
        assert!(parse(r#""\ud83e""#).is_err(), "unpaired surrogate rejected");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("name", Json::Str("nand2".into())),
            ("width", Json::Int(2)),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj([
                        (
                            "merged",
                            Json::Arr(vec![Json::Bool(true), Json::Bool(false)]),
                        ),
                        ("empty_arr", Json::Arr(vec![])),
                        ("empty_obj", Json::Obj(vec![])),
                    ]),
                    Json::Null,
                ]),
            ),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::obj([("a", Json::Arr(vec![Json::Int(1), Json::Int(2)]))]);
        let pretty = v.to_pretty();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn whitespace_and_numbers_parse() {
        let v = parse(" { \"a\" : [ 1 , -2.5 , 3e2 , 0 ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap(),
            &[
                Json::Int(1),
                Json::Float(-2.5),
                Json::Float(300.0),
                Json::Int(0)
            ]
        );
    }

    #[test]
    fn malformed_documents_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01",
            "- 1",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\q\"",
            "[1],[2]",
            "{\"a\":1,\"a\":2}",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("{\n  \"a\": [1,\n  x]\n}").unwrap_err();
        assert_eq!((err.line, err.column), (3, 3));
        assert!(err.to_string().contains("line 3, column 3"), "{err}");
        // Single-line input: column is offset + 1.
        let err = parse("[1, x]").unwrap_err();
        assert_eq!((err.line, err.column), (1, 5));
    }

    /// The untrusted-input guard: pathological nesting must fail with a
    /// structured error before the recursive parser can overflow the
    /// stack (a stack overflow aborts the process — `catch_unwind` in
    /// the serve daemon cannot contain it).
    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let deep = format!("{}null{}", open.repeat(100_000), close.repeat(100_000));
            let err = parse(&deep).unwrap_err();
            assert!(err.message.contains("nesting"), "{err}");
        }
        // The limit itself is reachable: MAX_DEPTH levels parse fine.
        let ok = format!("{}null{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        parse(&ok).unwrap();
        let over = format!(
            "{}null{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&over).is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "s": "x", "b": true, "a": []}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr(), Some(&[][..]));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(-1).as_usize(), None);
    }
}
