//! Machine-readable JSON export and import.
//!
//! The schema is deliberately simple and stable: rows of slots with their
//! terminal nets (by name), merge flags, and routed tracks per channel.
//! Serialization is hand-rolled over [`crate::jsonio`] (hermetic-deps
//! policy: no `serde`), and [`parse`] round-trips everything [`to_json`]
//! emits.

use crate::jsonio::{self, Json};
use crate::CellLayout;

/// JSON document root.
#[derive(Clone, Debug, PartialEq)]
pub struct CellDoc {
    /// Cell name.
    pub name: String,
    /// Cell width in transistor pitches.
    pub width: usize,
    /// Cell height in track-pitch units.
    pub height: usize,
    /// Rows, top to bottom.
    pub rows: Vec<RowDoc>,
    /// Inter-row channels, top to bottom.
    pub inter_channels: Vec<ChannelDoc>,
}

/// One P/N row.
#[derive(Clone, Debug, PartialEq)]
pub struct RowDoc {
    /// Slots, left to right.
    pub slots: Vec<SlotDoc>,
    /// Merge flags between adjacent slots.
    pub merged: Vec<bool>,
    /// The row's routed channel.
    pub channel: ChannelDoc,
}

/// One placed slot's terminal nets, by name.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotDoc {
    /// Gate net.
    pub gate: String,
    /// Left P diffusion net.
    pub p_left: String,
    /// Right P diffusion net.
    pub p_right: String,
    /// Left N diffusion net.
    pub n_left: String,
    /// Right N diffusion net.
    pub n_right: String,
}

/// A routed channel: tracks of `(net, lo, hi)` runs.
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelDoc {
    /// Tracks, each a list of runs.
    pub tracks: Vec<Vec<RunDoc>>,
}

/// One horizontal run on a track.
#[derive(Clone, Debug, PartialEq)]
pub struct RunDoc {
    /// Net name.
    pub net: String,
    /// Leftmost physical column (inclusive).
    pub lo: usize,
    /// Rightmost physical column (inclusive).
    pub hi: usize,
}

/// Builds the JSON document for a layout.
pub fn document(layout: &CellLayout) -> CellDoc {
    let channel_doc = |tracks: &[clip_route::leftedge::Track]| ChannelDoc {
        tracks: tracks
            .iter()
            .map(|t| {
                t.iter()
                    .map(|&(net, span)| RunDoc {
                        net: layout.net_name(net).to_owned(),
                        lo: span.lo,
                        hi: span.hi,
                    })
                    .collect()
            })
            .collect(),
    };
    CellDoc {
        name: layout.name.clone(),
        width: layout.width,
        height: layout.height,
        rows: layout
            .rows
            .iter()
            .enumerate()
            .map(|(r, row)| RowDoc {
                slots: row
                    .slots()
                    .iter()
                    .map(|s| SlotDoc {
                        gate: layout.net_name(s.gate).to_owned(),
                        p_left: layout.net_name(s.p_left).to_owned(),
                        p_right: layout.net_name(s.p_right).to_owned(),
                        n_left: layout.net_name(s.n_left).to_owned(),
                        n_right: layout.net_name(s.n_right).to_owned(),
                    })
                    .collect(),
                merged: row.merged().to_vec(),
                channel: channel_doc(&layout.intra_channels[r]),
            })
            .collect(),
        inter_channels: layout
            .inter_channels
            .iter()
            .map(|c| channel_doc(c))
            .collect(),
    }
}

impl CellDoc {
    /// The document as a JSON value tree.
    pub fn to_value(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("width", Json::Int(self.width as i64)),
            ("height", Json::Int(self.height as i64)),
            ("rows", Json::arr(&self.rows, RowDoc::to_value)),
            (
                "inter_channels",
                Json::arr(&self.inter_channels, ChannelDoc::to_value),
            ),
        ])
    }

    /// Rebuilds a document from a parsed JSON value.
    pub fn from_value(v: &Json) -> Result<Self, String> {
        Ok(CellDoc {
            name: str_field(v, "name")?,
            width: usize_field(v, "width")?,
            height: usize_field(v, "height")?,
            rows: arr_field(v, "rows")?
                .iter()
                .map(RowDoc::from_value)
                .collect::<Result<_, _>>()?,
            inter_channels: arr_field(v, "inter_channels")?
                .iter()
                .map(ChannelDoc::from_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl RowDoc {
    fn to_value(row: &RowDoc) -> Json {
        Json::obj([
            ("slots", Json::arr(&row.slots, SlotDoc::to_value)),
            ("merged", Json::arr(&row.merged, |&m| Json::Bool(m))),
            ("channel", ChannelDoc::to_value(&row.channel)),
        ])
    }

    fn from_value(v: &Json) -> Result<Self, String> {
        Ok(RowDoc {
            slots: arr_field(v, "slots")?
                .iter()
                .map(SlotDoc::from_value)
                .collect::<Result<_, _>>()?,
            merged: arr_field(v, "merged")?
                .iter()
                .map(|m| {
                    m.as_bool()
                        .ok_or_else(|| "merged: expected bool".to_owned())
                })
                .collect::<Result<_, _>>()?,
            channel: ChannelDoc::from_value(
                v.get("channel")
                    .ok_or_else(|| "missing field `channel`".to_owned())?,
            )?,
        })
    }
}

impl SlotDoc {
    fn to_value(slot: &SlotDoc) -> Json {
        Json::obj([
            ("gate", Json::Str(slot.gate.clone())),
            ("p_left", Json::Str(slot.p_left.clone())),
            ("p_right", Json::Str(slot.p_right.clone())),
            ("n_left", Json::Str(slot.n_left.clone())),
            ("n_right", Json::Str(slot.n_right.clone())),
        ])
    }

    fn from_value(v: &Json) -> Result<Self, String> {
        Ok(SlotDoc {
            gate: str_field(v, "gate")?,
            p_left: str_field(v, "p_left")?,
            p_right: str_field(v, "p_right")?,
            n_left: str_field(v, "n_left")?,
            n_right: str_field(v, "n_right")?,
        })
    }
}

impl ChannelDoc {
    fn to_value(channel: &ChannelDoc) -> Json {
        Json::obj([(
            "tracks",
            Json::arr(&channel.tracks, |t| Json::arr(t, RunDoc::to_value)),
        )])
    }

    fn from_value(v: &Json) -> Result<Self, String> {
        Ok(ChannelDoc {
            tracks: arr_field(v, "tracks")?
                .iter()
                .map(|t| {
                    t.as_arr()
                        .ok_or_else(|| "tracks: expected array".to_owned())?
                        .iter()
                        .map(RunDoc::from_value)
                        .collect()
                })
                .collect::<Result<_, _>>()?,
        })
    }
}

impl RunDoc {
    fn to_value(run: &RunDoc) -> Json {
        Json::obj([
            ("net", Json::Str(run.net.clone())),
            ("lo", Json::Int(run.lo as i64)),
            ("hi", Json::Int(run.hi as i64)),
        ])
    }

    fn from_value(v: &Json) -> Result<Self, String> {
        Ok(RunDoc {
            net: str_field(v, "net")?,
            lo: usize_field(v, "lo")?,
            hi: usize_field(v, "hi")?,
        })
    }
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    field(v, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("field `{key}`: expected string"))
}

fn usize_field(v: &Json, key: &str) -> Result<usize, String> {
    field(v, key)?
        .as_usize()
        .ok_or_else(|| format!("field `{key}`: expected non-negative integer"))
}

fn arr_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field `{key}`: expected array"))
}

/// Serializes a layout to pretty JSON.
pub fn to_json(layout: &CellLayout) -> String {
    document(layout).to_value().to_pretty()
}

/// Parses a document previously emitted by [`to_json`].
pub fn parse(text: &str) -> Result<CellDoc, String> {
    let value = jsonio::parse(text).map_err(|e| e.to_string())?;
    CellDoc::from_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_core::generator::{CellGenerator, GenOptions};
    use clip_netlist::library;

    fn layout() -> CellLayout {
        let cell = CellGenerator::new(GenOptions::rows(1))
            .generate(library::nand2())
            .unwrap();
        CellLayout::build(&cell)
    }

    #[test]
    fn document_round_trips_through_json() {
        let doc = document(&layout());
        for text in [doc.to_value().to_compact(), doc.to_value().to_pretty()] {
            let back = parse(&text).unwrap();
            assert_eq!(doc, back);
        }
    }

    #[test]
    fn document_structure_matches_layout() {
        let l = layout();
        let doc = document(&l);
        assert_eq!(doc.name, "nand2");
        assert_eq!(doc.width, 2);
        assert_eq!(doc.rows.len(), 1);
        assert_eq!(doc.rows[0].slots.len(), 2);
        assert_eq!(doc.rows[0].merged, vec![true]);
        assert!(doc.inter_channels.is_empty());
    }

    #[test]
    fn json_contains_net_names() {
        let text = to_json(&layout());
        assert!(text.contains("VDD"));
        assert!(text.contains("GND"));
        assert!(text.contains("\"gate\""));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse("not json").is_err());
        assert!(parse("{}").unwrap_err().contains("missing field `name`"));
        assert!(parse(r#"{"name": 7}"#)
            .unwrap_err()
            .contains("expected string"));
        let text = to_json(&layout());
        let truncated = &text[..text.len() / 2];
        assert!(parse(truncated).is_err());
    }

    #[test]
    fn exotic_net_names_survive_round_trip() {
        // The emitter escapes; the parser unescapes — even names no real
        // netlist should have.
        let mut doc = document(&layout());
        doc.name = "cell \"q\"\\\n\tüñí🦀".to_owned();
        let back = parse(&doc.to_value().to_pretty()).unwrap();
        assert_eq!(doc, back);
    }
}
