//! Machine-readable JSON export.
//!
//! The schema is deliberately simple and stable: rows of slots with their
//! terminal nets (by name), merge flags, and routed tracks per channel.

use serde::{Deserialize, Serialize};

use crate::CellLayout;

/// JSON document root.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct CellDoc {
    /// Cell name.
    pub name: String,
    /// Cell width in transistor pitches.
    pub width: usize,
    /// Cell height in track-pitch units.
    pub height: usize,
    /// Rows, top to bottom.
    pub rows: Vec<RowDoc>,
    /// Inter-row channels, top to bottom.
    pub inter_channels: Vec<ChannelDoc>,
}

/// One P/N row.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct RowDoc {
    /// Slots, left to right.
    pub slots: Vec<SlotDoc>,
    /// Merge flags between adjacent slots.
    pub merged: Vec<bool>,
    /// The row's routed channel.
    pub channel: ChannelDoc,
}

/// One placed slot's terminal nets, by name.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct SlotDoc {
    /// Gate net.
    pub gate: String,
    /// Left P diffusion net.
    pub p_left: String,
    /// Right P diffusion net.
    pub p_right: String,
    /// Left N diffusion net.
    pub n_left: String,
    /// Right N diffusion net.
    pub n_right: String,
}

/// A routed channel: tracks of `(net, lo, hi)` runs.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ChannelDoc {
    /// Tracks, each a list of runs.
    pub tracks: Vec<Vec<RunDoc>>,
}

/// One horizontal run on a track.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct RunDoc {
    /// Net name.
    pub net: String,
    /// Leftmost physical column (inclusive).
    pub lo: usize,
    /// Rightmost physical column (inclusive).
    pub hi: usize,
}

/// Builds the JSON document for a layout.
pub fn document(layout: &CellLayout) -> CellDoc {
    let channel_doc = |tracks: &[clip_route::leftedge::Track]| ChannelDoc {
        tracks: tracks
            .iter()
            .map(|t| {
                t.iter()
                    .map(|&(net, span)| RunDoc {
                        net: layout.net_name(net).to_owned(),
                        lo: span.lo,
                        hi: span.hi,
                    })
                    .collect()
            })
            .collect(),
    };
    CellDoc {
        name: layout.name.clone(),
        width: layout.width,
        height: layout.height,
        rows: layout
            .rows
            .iter()
            .enumerate()
            .map(|(r, row)| RowDoc {
                slots: row
                    .slots()
                    .iter()
                    .map(|s| SlotDoc {
                        gate: layout.net_name(s.gate).to_owned(),
                        p_left: layout.net_name(s.p_left).to_owned(),
                        p_right: layout.net_name(s.p_right).to_owned(),
                        n_left: layout.net_name(s.n_left).to_owned(),
                        n_right: layout.net_name(s.n_right).to_owned(),
                    })
                    .collect(),
                merged: row.merged().to_vec(),
                channel: channel_doc(&layout.intra_channels[r]),
            })
            .collect(),
        inter_channels: layout
            .inter_channels
            .iter()
            .map(|c| channel_doc(c))
            .collect(),
    }
}

/// Serializes a layout to pretty JSON.
///
/// # Panics
///
/// Panics if serialization fails, which cannot happen for this schema.
pub fn to_json(layout: &CellLayout) -> String {
    serde_json::to_string_pretty(&document(layout)).expect("schema serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_core::generator::{CellGenerator, GenOptions};
    use clip_netlist::library;

    fn layout() -> CellLayout {
        let cell = CellGenerator::new(GenOptions::rows(1))
            .generate(library::nand2())
            .unwrap();
        CellLayout::build(&cell)
    }

    #[test]
    fn document_round_trips_through_json() {
        let doc = document(&layout());
        let text = serde_json::to_string(&doc).unwrap();
        let back: CellDoc = serde_json::from_str(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn document_structure_matches_layout() {
        let l = layout();
        let doc = document(&l);
        assert_eq!(doc.name, "nand2");
        assert_eq!(doc.width, 2);
        assert_eq!(doc.rows.len(), 1);
        assert_eq!(doc.rows[0].slots.len(), 2);
        assert_eq!(doc.rows[0].merged, vec![true]);
        assert!(doc.inter_channels.is_empty());
    }

    #[test]
    fn json_contains_net_names() {
        let text = to_json(&layout());
        assert!(text.contains("VDD"));
        assert!(text.contains("GND"));
        assert!(text.contains("\"gate\""));
    }
}
