//! CIF (Caltech Intermediate Format) export.
//!
//! The symbolic layout maps onto an abstract λ-grid and is written as CIF
//! 2.0 boxes — the interchange format period tools (Magic, MOSIS flows)
//! consumed. The geometry is *symbolic-faithful*, not DRC-clean: strips,
//! poly columns, contacts, and routed metal-1 tracks land at their grid
//! positions with fixed λ dimensions, which is exactly what a
//! cell-assembly step downstream of CLIP would refine.
//!
//! Layer names follow the MOSIS SCMOS convention:
//! `CAA` active (diffusion), `CPG` poly, `CMF` metal-1, `CCA` contact.

use std::fmt::Write as _;

use crate::CellLayout;

/// Transistor pitch in λ.
const PITCH: i64 = 8;
/// Diffusion strip height in λ.
const STRIP: i64 = 6;
/// Routing track pitch in λ.
const TRACK: i64 = 4;
/// Poly gate width in λ.
const POLY: i64 = 2;
/// Contact square side in λ.
const CONTACT: i64 = 2;

/// One rectangle on a layer, in λ units (CIF convention: width, height,
/// center x, center y).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CifBox {
    /// Layer name (`CAA`, `CPG`, `CMF`, `CCA`).
    pub layer: &'static str,
    /// Box width.
    pub w: i64,
    /// Box height.
    pub h: i64,
    /// Center x.
    pub cx: i64,
    /// Center y.
    pub cy: i64,
}

/// The layout lowered to CIF boxes (exposed for tests and downstream
/// tooling; [`render_cif`] serializes it).
pub fn boxes(layout: &CellLayout) -> Vec<CifBox> {
    let mut out = Vec::new();
    // y grows downward in our plan; CIF y grows upward — flip at the end.
    let mut y = 0i64;

    // VDD rail.
    out.push(rail(layout, y));
    y -= STRIP;

    for (r, row) in layout.rows.iter().enumerate() {
        y = emit_row(&mut out, row, y);
        y = emit_channel(&mut out, &layout.intra_channels[r], y);
        if r + 1 < layout.rows.len() {
            y = emit_channel(&mut out, &layout.inter_channels[r], y);
        }
    }

    // GND rail.
    out.push(rail(layout, y - STRIP / 2));
    out
}

fn width_lambda(layout: &CellLayout) -> i64 {
    let cols = layout
        .rows
        .iter()
        .map(|r| r.physical_columns())
        .max()
        .unwrap_or(1) as i64;
    cols * PITCH + PITCH
}

fn rail(layout: &CellLayout, y: i64) -> CifBox {
    let w = width_lambda(layout);
    CifBox {
        layer: "CMF",
        w,
        h: STRIP / 2,
        cx: w / 2,
        cy: y - STRIP / 4,
    }
}

fn col_x(col: usize) -> i64 {
    col as i64 * PITCH + PITCH / 2 + PITCH / 2
}

fn emit_row(out: &mut Vec<CifBox>, row: &clip_route::row::PlacedRow, mut y: i64) -> i64 {
    let p_cy = y - STRIP / 2;
    let n_cy = y - STRIP - TRACK - STRIP / 2;
    // Diffusion segments (split at gaps) on both strips.
    let mut seg_start = 0usize;
    for s in 0..row.len() {
        let end_here = s + 1 == row.len() || !row.merged()[s];
        if end_here {
            let lo = row.physical_column(3 * seg_start);
            let hi = row.physical_column(3 * s + 2);
            let w = (hi - lo + 1) as i64 * PITCH - 2;
            let cx = (col_x(lo) + col_x(hi)) / 2;
            out.push(CifBox {
                layer: "CAA",
                w,
                h: STRIP,
                cx,
                cy: p_cy,
            });
            out.push(CifBox {
                layer: "CAA",
                w,
                h: STRIP,
                cx,
                cy: n_cy,
            });
            seg_start = s + 1;
        }
    }
    // Poly columns crossing both strips, and diffusion contacts.
    for a in row.anchors() {
        let cx = col_x(a.column);
        match a.strip {
            clip_route::row::Strip::Poly => out.push(CifBox {
                layer: "CPG",
                w: POLY,
                h: 2 * STRIP + TRACK + 2,
                cx,
                cy: (p_cy + n_cy) / 2,
            }),
            clip_route::row::Strip::P => out.push(CifBox {
                layer: "CCA",
                w: CONTACT,
                h: CONTACT,
                cx,
                cy: p_cy,
            }),
            clip_route::row::Strip::N => out.push(CifBox {
                layer: "CCA",
                w: CONTACT,
                h: CONTACT,
                cx,
                cy: n_cy,
            }),
        }
    }
    y = n_cy - STRIP / 2;
    y
}

fn emit_channel(out: &mut Vec<CifBox>, tracks: &[clip_route::leftedge::Track], mut y: i64) -> i64 {
    for track in tracks {
        let cy = y - TRACK / 2;
        for &(_, span) in track {
            let x0 = col_x(span.lo);
            let x1 = col_x(span.hi);
            out.push(CifBox {
                layer: "CMF",
                w: (x1 - x0).max(CONTACT) + CONTACT,
                h: TRACK / 2,
                cx: (x0 + x1) / 2,
                cy,
            });
        }
        y -= TRACK;
    }
    y
}

/// Serializes the layout as a CIF 2.0 document.
pub fn render_cif(layout: &CellLayout) -> String {
    let bs = boxes(layout);
    // Flip y so the cell sits in the first quadrant.
    let min_y = bs.iter().map(|b| b.cy - b.h / 2).min().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "(CIF generated by clip-layout);");
    let _ = writeln!(out, "DS 1 1 1;");
    let _ = writeln!(out, "9 {};", layout.name);
    let mut current = "";
    for b in &bs {
        if b.layer != current {
            let _ = writeln!(out, "L {};", b.layer);
            current = b.layer;
        }
        let _ = writeln!(out, "B {} {} {} {};", b.w, b.h, b.cx, b.cy - min_y);
    }
    let _ = writeln!(out, "DF;");
    let _ = writeln!(out, "C 1;");
    let _ = writeln!(out, "E");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_core::generator::{CellGenerator, GenOptions};
    use clip_netlist::library;

    fn layout_of(circuit: clip_netlist::Circuit, rows: usize) -> CellLayout {
        let cell = CellGenerator::new(GenOptions::rows(rows))
            .generate(circuit)
            .unwrap();
        CellLayout::build(&cell)
    }

    #[test]
    fn cif_structure_is_well_formed() {
        let cif = render_cif(&layout_of(library::nand2(), 1));
        assert!(cif.starts_with("(CIF"));
        assert!(cif.contains("DS 1 1 1;"));
        assert!(cif.contains("9 nand2;"));
        assert!(cif.contains("L CAA;"));
        assert!(cif.contains("L CPG;"));
        assert!(cif.contains("L CMF;"));
        assert!(cif.trim_end().ends_with('E'));
        // Every box line is "B w h x y;".
        for line in cif.lines().filter(|l| l.starts_with("B ")) {
            let fields: Vec<&str> = line.trim_end_matches(';').split_whitespace().collect();
            assert_eq!(fields.len(), 5, "{line}");
            for f in &fields[1..] {
                assert!(f.parse::<i64>().is_ok(), "{line}");
            }
        }
    }

    #[test]
    fn box_counts_match_structure() {
        let layout = layout_of(library::nand2(), 1);
        let bs = boxes(&layout);
        // Two poly gates.
        assert_eq!(bs.iter().filter(|b| b.layer == "CPG").count(), 2);
        // Fully merged NAND2: one diffusion segment per strip.
        assert_eq!(bs.iter().filter(|b| b.layer == "CAA").count(), 2);
        // Two rails + one z track.
        assert!(bs.iter().filter(|b| b.layer == "CMF").count() >= 3);
    }

    #[test]
    fn all_boxes_land_in_the_first_quadrant_after_render() {
        let cif = render_cif(&layout_of(library::xor2(), 2));
        for line in cif.lines().filter(|l| l.starts_with("B ")) {
            let fields: Vec<i64> = line
                .trim_end_matches(';')
                .split_whitespace()
                .skip(1)
                .map(|f| f.parse().unwrap())
                .collect();
            let (h, y) = (fields[1], fields[3]);
            assert!(y - h / 2 >= 0, "box below origin: {line}");
        }
    }

    #[test]
    fn gapped_rows_split_diffusion_segments() {
        // two_level_z in one row is 7 wide for 6 pairs: one gap, so more
        // than one CAA segment per strip.
        let layout = layout_of(library::two_level_z(), 1);
        let bs = boxes(&layout);
        let caa = bs.iter().filter(|b| b.layer == "CAA").count();
        assert!(caa >= 4, "expected split diffusion, got {caa} boxes");
    }
}
