//! SVG rendering of symbolic layouts.
//!
//! A scalable counterpart of the ASCII sticks view: diffusion strips as
//! horizontal bands (P in amber, N in green), poly gate columns crossing
//! them in red, routed channel tracks as labelled metal-1 lines in blue,
//! and the supply rails framing the cell. Dimensions are abstract grid
//! units — this is a *symbolic* layout, not DRC geometry.

use std::fmt::Write as _;

use crate::CellLayout;

/// Grid pitch in SVG user units.
const PITCH: usize = 42;
/// Height of one diffusion strip.
const STRIP: usize = 18;
/// Height of one routing track.
const TRACK: usize = 16;
/// Left margin (labels).
const MARGIN: usize = 60;

/// Renders the layout as a standalone SVG document.
pub fn render_svg(layout: &CellLayout) -> String {
    let cols = layout
        .rows
        .iter()
        .map(|r| r.physical_columns())
        .max()
        .unwrap_or(1);
    let width = MARGIN * 2 + cols * PITCH;

    // Vertical plan: rail, per row [P strip, channel tracks, N strip],
    // inter-row channel tracks, ..., rail.
    let mut body = String::new();
    let mut y = 0usize;

    let rail = |body: &mut String, y: &mut usize, label: &str| {
        let _ = write!(
            body,
            r##"<rect x="0" y="{y}" width="{width}" height="{STRIP}" fill="#444"/><text x="6" y="{ty}" fill="#fff" font-size="12">{label}</text>"##,
            y = *y,
            ty = *y + 13
        );
        *y += STRIP + 6;
    };

    rail(&mut body, &mut y, "VDD");

    for (r, row) in layout.rows.iter().enumerate() {
        y = draw_row(&mut body, layout, row, y);
        y = draw_channel(&mut body, layout, &layout.intra_channels[r], y, cols);
        if r + 1 < layout.rows.len() {
            y += 4;
            y = draw_channel(&mut body, layout, &layout.inter_channels[r], y, cols);
            y += 4;
        }
    }

    rail(&mut body, &mut y, "GND");

    format!(
        concat!(
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" "##,
            r##"viewBox="0 0 {w} {h}" font-family="monospace">"##,
            r##"<rect width="{w}" height="{h}" fill="#fafafa"/>{body}"##,
            r##"<text x="6" y="{h2}" font-size="11" fill="#333">{name}: {cw} pitches x {ch} units</text>"##,
            "</svg>"
        ),
        w = width,
        h = y + 20,
        h2 = y + 14,
        body = body,
        name = layout.name,
        cw = layout.width,
        ch = layout.height
    )
}

/// Draws one P/N row (P strip, poly columns, N strip); returns the next y.
fn draw_row(
    body: &mut String,
    layout: &CellLayout,
    row: &clip_route::row::PlacedRow,
    mut y: usize,
) -> usize {
    let x_of = |col: usize| MARGIN + col * PITCH;
    let p_y = y;
    let n_y = y + STRIP + TRACK; // poly crosses the small mid gap
                                 // Diffusion segments: contiguous runs of slots (split at gaps).
    let mut seg_start = 0usize;
    for s in 0..row.len() {
        let end_here = s + 1 == row.len() || !row.merged()[s];
        if end_here {
            let lo = row.physical_column(3 * seg_start);
            let hi = row.physical_column(3 * s + 2);
            for (yy, color) in [(p_y, "#e8b84b"), (n_y, "#7bc47f")] {
                let _ = write!(
                    body,
                    r##"<rect x="{x}" y="{yy}" width="{w}" height="{STRIP}" fill="{color}" stroke="#333"/>"##,
                    x = x_of(lo),
                    w = (hi - lo + 1) * PITCH,
                );
            }
            seg_start = s + 1;
        }
    }
    // Poly gates and terminal labels.
    for a in row.anchors() {
        let x = x_of(a.column) + PITCH / 2;
        match a.strip {
            clip_route::row::Strip::Poly => {
                let _ = write!(
                    body,
                    r##"<rect x="{x}" y="{p_y}" width="6" height="{h}" fill="#c0392b"/><text x="{tx}" y="{ty}" font-size="10" fill="#c0392b">{name}</text>"##,
                    x = x - 3,
                    h = n_y + STRIP - p_y,
                    tx = x - 8,
                    ty = p_y.saturating_sub(2).max(10),
                    name = layout.net_name(a.net)
                );
            }
            strip => {
                let yy = if strip == clip_route::row::Strip::P {
                    p_y + 12
                } else {
                    n_y + 12
                };
                let _ = write!(
                    body,
                    r##"<text x="{tx}" y="{yy}" font-size="9" fill="#222">{name}</text>"##,
                    tx = x - 14,
                    name = layout.net_name(a.net)
                );
            }
        }
    }
    y = n_y + STRIP + 4;
    y
}

/// Draws the tracks of one channel; returns the next y.
fn draw_channel(
    body: &mut String,
    layout: &CellLayout,
    tracks: &[clip_route::leftedge::Track],
    mut y: usize,
    _cols: usize,
) -> usize {
    for track in tracks {
        for &(net, span) in track {
            let x0 = MARGIN + span.lo * PITCH + PITCH / 2;
            let x1 = MARGIN + span.hi * PITCH + PITCH / 2;
            let _ = write!(
                body,
                r##"<line x1="{x0}" y1="{ym}" x2="{x1}" y2="{ym}" stroke="#2266cc" stroke-width="4"/><text x="{x0}" y="{ty}" font-size="9" fill="#2266cc">{name}</text>"##,
                ym = y + TRACK / 2,
                ty = y + 6,
                name = layout.net_name(net)
            );
        }
        y += TRACK;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_core::generator::{CellGenerator, GenOptions};
    use clip_netlist::library;

    fn svg_of(circuit: clip_netlist::Circuit, rows: usize) -> String {
        let cell = CellGenerator::new(GenOptions::rows(rows))
            .generate(circuit)
            .unwrap();
        render_svg(&CellLayout::build(&cell))
    }

    #[test]
    fn svg_is_well_formed() {
        let svg = svg_of(library::nand2(), 1);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("VDD"));
        assert!(svg.contains("GND"));
        // Two poly gates for a NAND2.
        assert_eq!(svg.matches("#c0392b\"/>").count(), 2);
    }

    #[test]
    fn multi_row_svg_has_all_rows() {
        let svg = svg_of(library::two_level_z(), 2);
        // Two rows of two strips each (possibly segmented): at least 4
        // diffusion rectangles.
        assert!(svg.matches("#e8b84b").count() >= 2);
        assert!(svg.matches("#7bc47f").count() >= 2);
    }

    #[test]
    fn tracks_render_as_lines() {
        let svg = svg_of(library::xor2(), 1);
        assert!(svg.contains("<line"), "expected channel tracks");
    }
}
