//! Area metrics.
//!
//! The paper's motivation (after Maziasz–Hayes) is that optimizing *both*
//! width and height "can result in area savings of more than 80% over
//! width minimization alone" — area is the product that matters. These
//! helpers compute abstract areas so the benches can reproduce that
//! comparison.

use crate::CellLayout;

/// Abstract cell area: width (pitches) × height (track units).
pub fn area(layout: &CellLayout) -> usize {
    layout.width * layout.height
}

/// Relative area saving of `improved` over `baseline`, in percent
/// (positive = smaller).
pub fn area_saving_percent(baseline: &CellLayout, improved: &CellLayout) -> f64 {
    let (b, i) = (area(baseline) as f64, area(improved) as f64);
    if b == 0.0 {
        0.0
    } else {
        (b - i) / b * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellLayout;
    use clip_core::generator::{CellGenerator, GenOptions};
    use clip_netlist::library;

    #[test]
    fn area_is_width_times_height() {
        let cell = CellGenerator::new(GenOptions::rows(1))
            .generate(library::nand2())
            .unwrap();
        let layout = CellLayout::build(&cell);
        assert_eq!(area(&layout), layout.width * layout.height);
    }

    #[test]
    fn saving_is_signed() {
        let small = CellGenerator::new(GenOptions::rows(1))
            .generate(library::nand2())
            .unwrap();
        let big = CellGenerator::new(GenOptions::rows(1))
            .generate(library::mux21())
            .unwrap();
        let small = CellLayout::build(&small);
        let big = CellLayout::build(&big);
        assert!(area_saving_percent(&big, &small) > 0.0);
        assert!(area_saving_percent(&small, &big) < 0.0);
    }
}
