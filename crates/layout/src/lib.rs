//! Symbolic (sticks) layout assembly, rendering, and export.
//!
//! CLIP's output is an abstract placement; this crate turns it into a
//! concrete *symbolic layout*: per-row column geometry, routed channel
//! tracks (left-edge assignment), ASCII art for humans, and JSON for
//! tools.
//!
//! # Example
//!
//! ```
//! use clip_core::generator::{CellGenerator, GenOptions};
//! use clip_layout::CellLayout;
//! use clip_netlist::library;
//!
//! let cell = CellGenerator::new(GenOptions::rows(1)).generate(library::nand2())?;
//! let layout = CellLayout::build(&cell);
//! let art = layout.render();
//! assert!(art.contains("VDD"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cif;
pub mod json;
pub mod jsonio;
pub mod metrics;
pub mod render;
pub mod svg;
pub mod trace;

use clip_core::generator::GeneratedCell;
use clip_netlist::NetId;
use clip_route::density::CellRouting;
use clip_route::leftedge::{assign_tracks, Track};
use clip_route::row::PlacedRow;

/// A fully assembled symbolic cell layout.
#[derive(Clone, Debug)]
pub struct CellLayout {
    /// Cell name.
    pub name: String,
    /// Placed row geometry, top to bottom.
    pub rows: Vec<PlacedRow>,
    /// Routed intra-row channels (one per row).
    pub intra_channels: Vec<Vec<Track>>,
    /// Routed inter-row channels (one per adjacent row pair).
    pub inter_channels: Vec<Vec<Track>>,
    /// Net name lookup, indexed by [`NetId::index`].
    pub net_names: Vec<String>,
    /// Cell width in transistor pitches.
    pub width: usize,
    /// Cell height in track pitches (tracks + overheads).
    pub height: usize,
}

impl CellLayout {
    /// Assembles the symbolic layout of a generated cell.
    pub fn build(cell: &GeneratedCell) -> Self {
        let nets = cell.units.paired().circuit().nets();
        let routing: CellRouting = cell.placement.routing(&cell.units);
        let rows = routing.rows().to_vec();

        let route_channel = |spans: std::collections::HashMap<NetId, clip_route::span::Span>| {
            let list: Vec<(NetId, clip_route::span::Span)> = {
                let mut v: Vec<_> = spans.into_iter().collect();
                v.sort_by_key(|&(n, s)| (s.lo, s.hi, n));
                v
            };
            assign_tracks(&list)
        };

        let intra_channels: Vec<Vec<Track>> = (0..rows.len())
            .map(|r| route_channel(routing.intra_spans(r)))
            .collect();
        let inter_channels: Vec<Vec<Track>> = (0..rows.len().saturating_sub(1))
            .map(|c| route_channel(routing.inter_spans(c)))
            .collect();

        CellLayout {
            name: cell.units.paired().circuit().name().to_owned(),
            rows,
            intra_channels,
            inter_channels,
            net_names: nets.iter().map(|n| nets.name(n).to_owned()).collect(),
            width: cell.width,
            height: cell.height,
        }
    }

    /// Net name lookup.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// Renders the layout as ASCII art (see [`render`]).
    pub fn render(&self) -> String {
        render::render(self)
    }

    /// Exports the layout as a JSON document (see [`json`]).
    pub fn to_json(&self) -> String {
        json::to_json(self)
    }

    /// Renders the layout as a standalone SVG document (see [`svg`]).
    pub fn to_svg(&self) -> String {
        svg::render_svg(self)
    }

    /// Serializes the layout as a CIF 2.0 document (see [`cif`]).
    pub fn to_cif(&self) -> String {
        cif::render_cif(self)
    }

    /// Total routed tracks across all channels.
    pub fn total_tracks(&self) -> usize {
        self.intra_channels.iter().map(Vec::len).sum::<usize>()
            + self.inter_channels.iter().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_core::generator::{CellGenerator, GenOptions};
    use clip_netlist::library;

    fn nand2_layout() -> CellLayout {
        let cell = CellGenerator::new(GenOptions::rows(1))
            .generate(library::nand2())
            .unwrap();
        CellLayout::build(&cell)
    }

    #[test]
    fn assembles_nand2() {
        let layout = nand2_layout();
        assert_eq!(layout.rows.len(), 1);
        assert_eq!(layout.width, 2);
        assert_eq!(layout.intra_channels.len(), 1);
        assert!(layout.inter_channels.is_empty());
        assert_eq!(layout.name, "nand2");
    }

    #[test]
    fn track_counts_match_routing_density() {
        let cell = CellGenerator::new(GenOptions::rows(3))
            .generate(library::mux21())
            .unwrap();
        let layout = CellLayout::build(&cell);
        // Left-edge realizes exactly the density the generator reported.
        let reported: usize = cell.tracks.iter().sum();
        assert_eq!(layout.total_tracks(), reported);
    }

    #[test]
    fn net_names_resolve() {
        let layout = nand2_layout();
        // Every net referenced by a track resolves to a non-empty name.
        for channel in layout.intra_channels.iter().chain(&layout.inter_channels) {
            for track in channel {
                for &(net, _) in track {
                    assert!(!layout.net_name(net).is_empty());
                }
            }
        }
    }
}
