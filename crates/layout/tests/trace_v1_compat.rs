//! Backward compatibility: a committed schema-1 trace document (written
//! before the `schema` key existed) must keep parsing, and re-emitting it
//! must upgrade it to the current schema version without losing a field.

use clip_layout::trace;

const V1_FIXTURE: &str = include_str!("fixtures/trace_v1.json");

#[test]
fn v1_fixture_parses_and_upgrades_to_current_schema() {
    let parsed = trace::parse(V1_FIXTURE).expect("schema-1 fixture parses");
    assert_eq!(parsed.stages.len(), 5);

    let solve = &parsed.stages[3];
    assert_eq!(solve.stage.name(), "solve");
    assert_eq!(solve.rows, Some(2));
    assert_eq!(solve.model_vars, Some(118));
    assert_eq!(solve.threads, Some(2));
    assert_eq!(solve.winner_strategy.as_deref(), Some("cbj"));
    assert_eq!(solve.thread_solves.len(), 2);
    // Fields introduced after schema 1 default cleanly.
    assert_eq!(solve.tuning, None);
    assert_eq!(solve.solve.as_ref().unwrap().shared_prunes, 0);
    let stats = solve.solve.as_ref().unwrap();
    assert_eq!(stats.nodes, 87);
    assert_eq!(stats.incumbents.len(), 2);
    assert!(stats.proved_optimal);

    // Re-emitting stamps the current schema version; the round trip is
    // lossless from there on.
    let reemitted = trace::to_json(&parsed);
    assert!(
        reemitted.contains(&format!("\"schema\": {}", trace::TRACE_SCHEMA)),
        "{reemitted}"
    );
    let back = trace::parse(&reemitted).expect("re-emitted trace parses");
    assert_eq!(back, parsed);
    assert_eq!(trace::to_json(&back), reemitted);
}

#[test]
fn explicit_v1_and_current_headers_both_parse() {
    // Some writers may stamp `"schema": 1` explicitly on old documents.
    let explicit = V1_FIXTURE.replacen('{', "{\"schema\":1,", 1);
    let parsed = trace::parse(&explicit).expect("explicit schema-1 parses");
    assert_eq!(parsed, trace::parse(V1_FIXTURE).unwrap());

    // A hypothetical future version is rejected, not misread.
    let future = V1_FIXTURE.replacen('{', "{\"schema\":99,", 1);
    let err = trace::parse(&future).unwrap_err();
    assert!(matches!(err, trace::TraceError::Schema(_)), "{err}");
}
