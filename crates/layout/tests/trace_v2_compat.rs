//! Backward compatibility: a committed schema-2 trace document (written
//! before the constraint-theory fields existed) must keep parsing, with
//! the theory fields defaulting cleanly, and re-emitting must upgrade it
//! to the current schema version without losing a field.

use clip_layout::trace;

const V2_FIXTURE: &str = include_str!("fixtures/trace_v2.json");

#[test]
fn v2_fixture_parses_and_upgrades_to_current_schema() {
    let parsed = trace::parse(V2_FIXTURE).expect("schema-2 fixture parses");
    assert_eq!(parsed.stages.len(), 4);

    // Fields schema 2 already carried survive.
    let solve = &parsed.stages[2];
    assert_eq!(solve.stage.name(), "solve");
    assert_eq!(solve.rows, Some(2));
    assert_eq!(solve.model_vars, Some(118));
    assert_eq!(solve.winner_strategy.as_deref(), Some("cbj"));
    assert_eq!(
        solve.tuning.as_deref(),
        Some("key=small-sparse-deep-flat seed=off")
    );
    let stats = solve.solve.as_ref().unwrap();
    assert_eq!(stats.nodes, 91);
    assert_eq!(stats.shared_prunes, 2);
    assert_eq!(stats.incumbents.len(), 2);

    // Fields introduced by schema 3 default cleanly: no class histogram,
    // all-zero per-class counters.
    assert!(parsed.stages.iter().all(|s| s.classes.is_none()));
    assert!(stats.props_by_class.is_empty());
    assert!(stats.conflicts_by_class.is_empty());

    // Re-emitting stamps the current schema version; the round trip is
    // lossless from there on.
    let reemitted = trace::to_json(&parsed);
    assert!(
        reemitted.contains(&format!("\"schema\": {}", trace::TRACE_SCHEMA)),
        "{reemitted}"
    );
    let back = trace::parse(&reemitted).expect("re-emitted trace parses");
    assert_eq!(back, parsed);
    assert_eq!(trace::to_json(&back), reemitted);
}
