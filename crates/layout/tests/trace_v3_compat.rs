//! Backward compatibility: a committed schema-3 trace document (written
//! before the modern-CDCL engine counters existed) must keep parsing,
//! with the engine fields defaulting cleanly, and re-emitting must
//! upgrade it to the current schema version without losing a field.

use clip_layout::trace;

const V3_FIXTURE: &str = include_str!("fixtures/trace_v3.json");

#[test]
fn v3_fixture_parses_and_upgrades_to_current_schema() {
    let parsed = trace::parse(V3_FIXTURE).expect("schema-3 fixture parses");
    assert_eq!(parsed.stages.len(), 4);

    // Fields schema 3 already carried survive.
    let solve = &parsed.stages[2];
    assert_eq!(solve.stage.name(), "solve");
    assert_eq!(solve.rows, Some(2));
    assert_eq!(solve.model_vars, Some(118));
    assert_eq!(solve.winner_strategy.as_deref(), Some("cbj"));
    assert!(solve.classes.is_some());
    let stats = solve.solve.as_ref().unwrap();
    assert_eq!(stats.nodes, 91);
    assert_eq!(stats.learned, 10);
    assert_eq!(stats.shared_prunes, 2);
    assert_eq!(stats.props_by_class.total(), 1301);
    assert_eq!(stats.incumbents.len(), 2);

    // Fields introduced by schema 4 default cleanly: zero restart and
    // learned-DB counters, empty PLBD histogram.
    assert_eq!(stats.restarts, 0);
    assert_eq!(stats.learned_kept, 0);
    assert_eq!(stats.learned_deleted, 0);
    assert!(stats.plbd_hist.is_empty());

    // Re-emitting stamps the current schema version; the round trip is
    // lossless from there on.
    let reemitted = trace::to_json(&parsed);
    assert!(
        reemitted.contains(&format!("\"schema\": {}", trace::TRACE_SCHEMA)),
        "{reemitted}"
    );
    let back = trace::parse(&reemitted).expect("re-emitted trace parses");
    assert_eq!(back, parsed);
    assert_eq!(trace::to_json(&back), reemitted);
}
