//! Backward compatibility: a committed schema-4 trace document (written
//! before the `stop_reason` field existed) must keep parsing, with the
//! reason defaulting to `None` even on an unproved solve, and
//! re-emitting must upgrade it to the current schema version without
//! losing a field.

use clip_layout::trace;

const V4_FIXTURE: &str = include_str!("fixtures/trace_v4.json");

#[test]
fn v4_fixture_parses_and_upgrades_to_current_schema() {
    let parsed = trace::parse(V4_FIXTURE).expect("schema-4 fixture parses");
    assert_eq!(parsed.stages.len(), 4);

    // Fields schema 4 already carried survive.
    let solve = &parsed.stages[2];
    assert_eq!(solve.stage.name(), "solve");
    assert_eq!(solve.winner_strategy.as_deref(), Some("evsids"));
    let stats = solve.solve.as_ref().unwrap();
    assert_eq!(stats.nodes, 91);
    assert_eq!(stats.restarts, 2);
    assert_eq!(stats.learned_kept, 7);
    assert_eq!(stats.learned_deleted, 3);
    assert_eq!(stats.plbd_hist, vec![4, 3, 2, 1, 0, 0, 0, 0]);

    // Schema 5's field defaults cleanly: even an unproved schema-4
    // solve has no stop reason — the writer predates the vocabulary.
    assert!(!stats.proved_optimal);
    assert_eq!(stats.stop_reason, None);

    // Re-emitting stamps the current schema version; the round trip is
    // lossless from there on.
    let reemitted = trace::to_json(&parsed);
    assert!(
        reemitted.contains(&format!("\"schema\": {}", trace::TRACE_SCHEMA)),
        "{reemitted}"
    );
    let back = trace::parse(&reemitted).expect("re-emitted trace parses");
    assert_eq!(back, parsed);
    assert_eq!(trace::to_json(&back), reemitted);
}
