//! Backward compatibility: a committed schema-5 trace document (written
//! before the Pareto frontier fields existed) must keep parsing, with
//! the stage's `pareto` array defaulting to `None`, and re-emitting
//! must upgrade it to the current schema version without losing a
//! field.

use clip_layout::trace;

const V5_FIXTURE: &str = include_str!("fixtures/trace_v5.json");

#[test]
fn v5_fixture_parses_and_upgrades_to_current_schema() {
    let parsed = trace::parse(V5_FIXTURE).expect("schema-5 fixture parses");
    assert_eq!(parsed.stages.len(), 4);

    // Fields schema 5 already carried survive, including the stop
    // reason it introduced.
    let solve = &parsed.stages[2];
    assert_eq!(solve.stage.name(), "solve");
    assert_eq!(solve.winner_strategy.as_deref(), Some("evsids"));
    let stats = solve.solve.as_ref().unwrap();
    assert_eq!(stats.nodes, 91);
    assert_eq!(
        stats.stop_reason,
        Some(clip_core::pipeline::StopReason::Deadline)
    );

    // Schema 6's field defaults cleanly: no stage of a schema-5 trace
    // carries Pareto points — the writer predates the vocabulary.
    assert!(parsed.stages.iter().all(|s| s.pareto.is_none()));
    let sweep = &parsed.stages[3];
    assert_eq!(sweep.stage.name(), "sweep");
    assert_eq!(sweep.shared_prunes, Some(1));

    // Re-emitting stamps the current schema version; the round trip is
    // lossless from there on.
    let reemitted = trace::to_json(&parsed);
    assert!(
        reemitted.contains(&format!("\"schema\": {}", trace::TRACE_SCHEMA)),
        "{reemitted}"
    );
    let back = trace::parse(&reemitted).expect("re-emitted trace parses");
    assert_eq!(back, parsed);
    assert_eq!(trace::to_json(&back), reemitted);
}
