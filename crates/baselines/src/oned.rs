//! Exact 1-D width optimization via Held–Karp dynamic programming.
//!
//! For a single row, the minimum-width chaining problem has optimal
//! substructure over (set of placed units, last unit, last orientation):
//! the classic bitmask DP. It is exact up to ~16 units — far beyond the
//! factorial exhaustive oracle — and serves two roles here:
//!
//! * an independent cross-check of CLIP-W's single-row optima (the ILP and
//!   the DP must agree exactly);
//! * the "exact 1-D" reference of the paper's introduction (Maziasz–Hayes
//!   \[15\] solve this problem with specialized methods; our DP plays that
//!   part).

use clip_core::orient::Orient;
use clip_core::share::ShareArray;
use clip_core::solution::{PlacedUnit, Placement};
use clip_core::unit::UnitSet;

/// Hard cap: 2^n × n × 4 states must stay reasonable.
const MAX_UNITS: usize = 16;

/// Computes the exact minimum single-row width and a witnessing placement.
///
/// Returns `None` for empty unit sets or more than 16 units.
pub fn optimal_1d(units: &UnitSet, share: &ShareArray) -> Option<(usize, Placement)> {
    let n = units.len();
    if n == 0 || n > MAX_UNITS {
        return None;
    }
    let orients: Vec<Vec<Orient>> = units.units().iter().map(|u| u.orients()).collect();
    let widths: Vec<usize> = units.units().iter().map(|u| u.width).collect();
    let max_orients = 4usize;

    // dp[mask][last][o] = minimal width of a chain placing `mask`, ending
    // with `last` in orientation index `o`.
    let full = 1usize << n;
    let inf = usize::MAX / 2;
    let idx = |mask: usize, last: usize, o: usize| (mask * n + last) * max_orients + o;
    let mut dp = vec![inf; full * n * max_orients];
    let mut parent: Vec<u32> = vec![u32::MAX; full * n * max_orients];

    for u in 0..n {
        for (oi, _) in orients[u].iter().enumerate() {
            dp[idx(1 << u, u, oi)] = widths[u];
        }
    }
    for mask in 1..full {
        for last in 0..n {
            if mask & (1 << last) == 0 {
                continue;
            }
            for (oi, &o_last) in orients[last].iter().enumerate() {
                let cur = dp[idx(mask, last, oi)];
                if cur >= inf {
                    continue;
                }
                for next in 0..n {
                    if mask & (1 << next) != 0 {
                        continue;
                    }
                    let nmask = mask | (1 << next);
                    for (oj, &o_next) in orients[next].iter().enumerate() {
                        let gap = usize::from(!share.shares(last, o_last, next, o_next));
                        let w = cur + widths[next] + gap;
                        let slot = idx(nmask, next, oj);
                        if w < dp[slot] {
                            dp[slot] = w;
                            parent[slot] = idx(mask, last, oi) as u32;
                        }
                    }
                }
            }
        }
    }

    // Best final state.
    let mut best: Option<(usize, usize, usize)> = None; // (width, last, o)
    for last in 0..n {
        for (oi, _) in orients[last].iter().enumerate() {
            let w = dp[idx(full - 1, last, oi)];
            if w < inf && best.is_none_or(|(bw, _, _)| w < bw) {
                best = Some((w, last, oi));
            }
        }
    }
    let (width, mut last, mut oi) = best?;

    // Reconstruct the chain right-to-left.
    let mut rev: Vec<(usize, Orient)> = Vec::with_capacity(n);
    let mut mask = full - 1;
    loop {
        rev.push((last, orients[last][oi]));
        let p = parent[idx(mask, last, oi)];
        if p == u32::MAX {
            break;
        }
        let p = p as usize;
        let o = p % max_orients;
        let rest = p / max_orients;
        let l = rest % n;
        let m = rest / n;
        mask = m;
        last = l;
        oi = o;
    }
    rev.reverse();

    let row: Vec<PlacedUnit> = rev
        .iter()
        .enumerate()
        .map(|(k, &(u, o))| PlacedUnit {
            unit: u,
            orient: o,
            merged_with_next: k + 1 < rev.len() && share.shares(u, o, rev[k + 1].0, rev[k + 1].1),
        })
        .collect();
    Some((width, Placement { rows: vec![row] }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_core::exhaustive;
    use clip_core::verify::check_width;
    use clip_netlist::library;

    fn setup(circuit: clip_netlist::Circuit) -> (UnitSet, ShareArray) {
        let units = UnitSet::flat(circuit.into_paired().unwrap());
        let share = ShareArray::new(&units);
        (units, share)
    }

    #[test]
    fn matches_exhaustive_on_small_cells() {
        for circuit in [library::nand2(), library::aoi21(), library::aoi22()] {
            let name = circuit.name().to_owned();
            let (units, share) = setup(circuit);
            let (dp, placement) = optimal_1d(&units, &share).unwrap();
            let brute = exhaustive::optimal_width(&units, &share, 1).unwrap();
            assert_eq!(dp, brute, "{name}");
            check_width(&units, &placement, dp).unwrap();
        }
    }

    #[test]
    fn confirms_the_single_row_optima_of_the_suite() {
        // Independent confirmation of the Table 3 single-row widths.
        for (circuit, expected) in [
            (library::xor2(), 6),
            (library::bridge(), 7),
            (library::two_level_z(), 7),
            (library::mux21(), 9),
            (library::dlatch(), 7),
        ] {
            let name = circuit.name().to_owned();
            let (units, share) = setup(circuit);
            let (w, placement) = optimal_1d(&units, &share).unwrap();
            assert_eq!(w, expected, "{name}");
            check_width(&units, &placement, w).unwrap();
        }
    }

    #[test]
    fn handles_stacked_units() {
        let units =
            clip_core::cluster::cluster_and_stacks(library::full_adder().into_paired().unwrap());
        let share = ShareArray::new(&units);
        let (w, placement) = optimal_1d(&units, &share).unwrap();
        // Width at least the total transistor columns.
        assert!(w >= units.total_width());
        check_width(&units, &placement, w).unwrap();
    }

    #[test]
    fn rejects_oversized_inputs() {
        let (units, share) = setup(library::mux41()); // 21 pairs
        assert!(optimal_1d(&units, &share).is_none());
    }

    #[test]
    fn single_unit_is_its_own_width() {
        let (units, share) = setup(library::inverter());
        let (w, placement) = optimal_1d(&units, &share).unwrap();
        assert_eq!(w, 1);
        assert_eq!(placement.rows.len(), 1);
        assert_eq!(placement.rows[0].len(), 1);
    }
}
