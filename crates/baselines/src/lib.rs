//! Heuristic layout baselines.
//!
//! The CLIP paper compares against the commercial **Virtuoso Layout
//! Synthesizer**, "a heuristic tool that yields non-optimal layouts even
//! for small cells". Virtuoso is proprietary; this crate provides the
//! substitute comparators used by our reproduction of Tables 3 and 4:
//!
//! * [`greedy2d`] — a greedy 2-D placer (multi-start chain growth +
//!   orientation DP + balanced split + hill climbing), the primary
//!   Virtuoso stand-in;
//! * [`euler_1d`] — the classic 1-D style: one row, nearest-neighbour
//!   chaining (Uehara–VanCleemput-flavoured heuristic);
//! * [`oned::optimal_1d`] — *exact* 1-D width via Held–Karp DP (the
//!   Maziasz–Hayes exact-1-D reference of the paper's introduction);
//! * [`random_placement`] — a seeded random placement, the floor any
//!   heuristic must beat (used by the figure ablations).
//!
//! Every baseline returns a [`BaselineResult`] with the same geometric
//! metrics the optimizer reports, so comparisons are apples-to-apples.
//!
//! # Example
//!
//! ```
//! use clip_baselines::greedy2d;
//! use clip_core::share::ShareArray;
//! use clip_core::unit::UnitSet;
//! use clip_netlist::library;
//!
//! let units = UnitSet::flat(library::mux21().into_paired()?);
//! let share = ShareArray::new(&units);
//! let result = greedy2d(&units, &share, 2).expect("2 rows fit 7 pairs");
//! assert!(result.width >= 4); // the verified 2-row optimum
//! # Ok::<(), clip_netlist::PairCircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oned;

use clip_rng::Rng;

use clip_core::exhaustive::placement_from_order;
use clip_core::generator::{evaluate_order, greedy_placement_with};
use clip_core::share::ShareArray;
use clip_core::solution::Placement;
use clip_core::unit::UnitSet;
use clip_route::density::{cell_height, CellRouting, HeightParams};

/// A baseline layout and its metrics.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// The placement produced.
    pub placement: Placement,
    /// Cell width in transistor pitches.
    pub width: usize,
    /// Total routing tracks (all channels).
    pub tracks: usize,
    /// Cell height (tracks + default overheads).
    pub height: usize,
}

impl BaselineResult {
    fn from_placement(units: &UnitSet, placement: Placement) -> Self {
        let routing: CellRouting = placement.routing(units);
        BaselineResult {
            width: routing.cell_width(),
            tracks: routing.total_tracks(),
            height: cell_height(&routing, HeightParams::default()),
            placement,
        }
    }
}

/// The greedy 2-D heuristic placer — our Virtuoso substitute.
///
/// Uses the same machinery as the ILP's warm start: multi-start
/// nearest-neighbour chains over the share graph, an orientation DP, an
/// exact min-max row split, and pairwise-swap hill climbing. Good but not
/// optimal: on cells where sharing choices interact it is typically one or
/// two pitches wider than CLIP-W (the shape of the paper's comparison).
///
/// Returns `None` if `rows` is zero or exceeds the unit count.
pub fn greedy2d(units: &UnitSet, share: &ShareArray, rows: usize) -> Option<BaselineResult> {
    // Deliberately NOT the exhaustive-small variant: this is the honest
    // heuristic comparator (see `greedy_placement_with`).
    let placement = greedy_placement_with(units, share, rows, false)?;
    Some(BaselineResult::from_placement(units, placement))
}

/// The classic 1-D style: all pairs in a single row, chained greedily.
///
/// Unlike [`greedy2d`] this deliberately skips the hill-climbing pass —
/// it reproduces the flavour of first-generation one-dimensional cell
/// compilers (SOLO, GENAC) that CLIP's introduction contrasts against.
pub fn euler_1d(units: &UnitSet, share: &ShareArray) -> Option<BaselineResult> {
    if units.is_empty() {
        return None;
    }
    // Single nearest-neighbour chain from unit 0, orientation DP, no
    // improvement passes.
    let n = units.len();
    let mut remaining: Vec<usize> = (1..n).collect();
    let mut order = vec![0usize];
    while !remaining.is_empty() {
        let last = *order.last().expect("order non-empty");
        let pick = remaining.iter().position(|&cand| {
            units.units()[last].orients().iter().any(|&oi| {
                units.units()[cand]
                    .orients()
                    .iter()
                    .any(|&oj| share.shares(last, oi, cand, oj))
            })
        });
        let unit = remaining.remove(pick.unwrap_or(0));
        order.push(unit);
    }
    let (_, placement) = evaluate_order(units, share, &order, 1);
    Some(BaselineResult::from_placement(units, placement))
}

/// A seeded random placement: random order, random orientations, greedy
/// merges, contiguous split into `rows` equal-count segments.
///
/// Returns `None` if `rows` is zero or exceeds the unit count.
pub fn random_placement(
    units: &UnitSet,
    share: &ShareArray,
    rows: usize,
    seed: u64,
) -> Option<BaselineResult> {
    let n = units.len();
    if rows == 0 || rows > n {
        return None;
    }
    let mut rng = Rng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let orients: Vec<_> = order
        .iter()
        .map(|&u| {
            *rng.choose(&units.units()[u].orients())
                .expect("units have orientations")
        })
        .collect();
    // Equal-count contiguous cuts.
    let cuts: Vec<usize> = (1..rows).map(|r| r * n / rows).collect();
    let (_, placement) = placement_from_order(units, share, &order, &orients, &cuts);
    Some(BaselineResult::from_placement(units, placement))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_core::verify::check_placement;
    use clip_netlist::library;

    fn setup(circuit: clip_netlist::Circuit) -> (UnitSet, ShareArray) {
        let units = UnitSet::flat(circuit.into_paired().unwrap());
        let share = ShareArray::new(&units);
        (units, share)
    }

    #[test]
    fn greedy2d_produces_legal_layouts() {
        for rows in 1..=3 {
            let (units, share) = setup(library::mux21());
            let result = greedy2d(&units, &share, rows).unwrap();
            check_placement(&units, &result.placement)
                .unwrap_or_else(|e| panic!("rows={rows}: {e}"));
            assert_eq!(result.placement.rows.len(), rows);
            assert!(result.width >= units.total_width().div_ceil(rows));
            assert!(result.height > result.tracks);
        }
    }

    #[test]
    fn greedy2d_rejects_bad_row_counts() {
        let (units, share) = setup(library::nand2());
        assert!(greedy2d(&units, &share, 0).is_none());
        assert!(greedy2d(&units, &share, 3).is_none());
    }

    #[test]
    fn euler_1d_is_single_row() {
        let (units, share) = setup(library::xor2());
        let result = euler_1d(&units, &share).unwrap();
        assert_eq!(result.placement.rows.len(), 1);
        check_placement(&units, &result.placement).unwrap();
        // Heuristic is never better than the verified 1-row optimum (6).
        assert!(result.width >= 6);
    }

    #[test]
    fn random_placement_is_legal_and_seeded() {
        let (units, share) = setup(library::two_level_z());
        let a = random_placement(&units, &share, 2, 42).unwrap();
        let b = random_placement(&units, &share, 2, 42).unwrap();
        let c = random_placement(&units, &share, 2, 43).unwrap();
        assert_eq!(a.placement, b.placement, "same seed, same layout");
        check_placement(&units, &a.placement).unwrap();
        check_placement(&units, &c.placement).unwrap();
    }

    #[test]
    fn greedy_beats_random_on_average() {
        let (units, share) = setup(library::mux21());
        let greedy = greedy2d(&units, &share, 2).unwrap();
        let avg_random: f64 = (0..20)
            .map(|s| random_placement(&units, &share, 2, s).unwrap().width as f64)
            .sum::<f64>()
            / 20.0;
        assert!(
            (greedy.width as f64) <= avg_random,
            "greedy {} vs random avg {avg_random}",
            greedy.width
        );
    }

    #[test]
    fn two_d_beats_one_d_in_width() {
        // The paper's headline: the 2-D style narrows cells dramatically.
        let (units, share) = setup(library::mux21());
        let oned = euler_1d(&units, &share).unwrap();
        let twod = greedy2d(&units, &share, 3).unwrap();
        assert!(twod.width < oned.width);
    }
}
