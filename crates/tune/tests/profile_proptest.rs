//! Property test: every representable `TuningProfile` survives the JSON
//! round trip exactly, and serialization is stable (emit → parse → emit
//! is a fixed point).

use clip_proptest::{gens, proptest_lite, Gen};
use clip_tune::{ProfileEntry, TuningProfile};

/// All 32 valid feature keys (4 sizes × 2 densities × 2 depths × 2 modes).
fn all_keys() -> Vec<String> {
    let mut keys = Vec::new();
    for size in ["tiny", "small", "medium", "large"] {
        for nets in ["sparse", "dense"] {
            for chain in ["shallow", "deep"] {
                for mode in ["flat", "hier"] {
                    keys.push(format!("{size}-{nets}-{chain}-{mode}"));
                }
            }
        }
    }
    keys
}

fn entry_gen() -> Gen<ProfileEntry> {
    Gen::new(|rng| ProfileEntry {
        observations: rng.gen_range(0..10_000usize),
        hclip_seed: match rng.gen_range(0..3u8) {
            0 => None,
            1 => Some(true),
            _ => Some(false),
        },
        seed_slice: rng.gen_bool(0.5).then(|| rng.gen_range(0..=8u32)),
        portfolio: {
            let n = rng.gen_range(0..=3usize);
            (0..n)
                .map(|_| {
                    ["cbj", "cdcl", "cbj-dyn", "mystery"][rng.gen_range(0..4usize)].to_string()
                })
                .collect()
        },
        jobs: rng.gen_bool(0.5).then(|| rng.gen_range(1..=16usize)),
    })
}

fn profile_gen() -> Gen<TuningProfile> {
    let entries = entry_gen();
    Gen::new(move |rng| {
        let keys = all_keys();
        let n = rng.gen_range(0..=5usize);
        let mut profile = TuningProfile::default();
        for _ in 0..n {
            let key = keys[rng.gen_range(0..keys.len())].clone();
            profile.entries.insert(key, entries.sample(rng));
        }
        profile
    })
}

proptest_lite! {
    cases: 128;

    fn profile_json_round_trips(profile in profile_gen()) {
        let text = profile.to_json();
        let back = TuningProfile::parse(&text).expect("serialized profile parses");
        assert_eq!(back, profile);
        assert_eq!(back.to_json(), text, "serialization is a fixed point");
    }

    fn plans_from_any_profile_are_safe(profile in profile_gen(), pick in gens::int(0..32usize)) {
        // Whatever the profile holds, the distilled plan never carries a
        // zero jobs count and stamps its source only when it has advice.
        let keys = all_keys();
        let key = clip_tune::FeatureKey::parse(&keys[pick]).unwrap();
        let plan = profile.plan_for(&key);
        if plan.is_default() {
            assert_eq!(plan.source, None);
        } else {
            assert_eq!(plan.source.as_deref(), Some(keys[pick].as_str()));
        }
    }
}
