//! Circuit feature extraction and the coarse feature key.
//!
//! The tuner does not memorize circuits — it buckets them. A
//! [`FeatureKey`] combines four coarse dimensions (pair-count size
//! class, net density, series-chain depth, flat vs. hierarchical
//! request) into a small closed key space, so a profile learned on one
//! cell transfers to structurally similar ones and a handful of bench
//! runs covers the space. The buckets follow the paper's problem-size
//! story: the flat ILP is comfortable through "small" cells, the HCLIP
//! seed starts paying off on deep-chained "medium" ones, and
//! hierarchical mode takes over beyond that.

use std::fmt;

use clip_core::cluster;
use clip_netlist::{Circuit, PairedCircuit};

/// Raw structural features of one circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitFeatures {
    /// Number of P/N transistor pairs.
    pub pairs: usize,
    /// Number of nets (including rails).
    pub nets: usize,
    /// Longest series chain (and-stack) found, in pairs; 1 when the
    /// circuit has no stacks.
    pub max_chain: usize,
}

impl CircuitFeatures {
    /// Extracts features from a circuit. `None` when the circuit cannot
    /// be paired (such a circuit cannot be synthesized either, so it has
    /// no useful key).
    pub fn extract(circuit: &Circuit) -> Option<CircuitFeatures> {
        Some(Self::from_paired(&circuit.clone().into_paired().ok()?))
    }

    /// Extracts features from an already-paired circuit.
    pub fn from_paired(paired: &PairedCircuit) -> CircuitFeatures {
        let max_chain = cluster::find_stacks(paired)
            .iter()
            .map(|s| s.members.len())
            .max()
            .unwrap_or(1);
        CircuitFeatures {
            pairs: paired.len(),
            nets: paired.circuit().nets().len(),
            max_chain,
        }
    }

    /// Buckets the features into a [`FeatureKey`]. `hier` marks a
    /// hierarchical request — a request property, not a circuit one, but
    /// it changes which levers matter, so it is part of the key.
    pub fn key(&self, hier: bool) -> FeatureKey {
        FeatureKey {
            size: SizeBucket::of(self.pairs),
            nets: NetBucket::of(self.nets),
            chain: ChainBucket::of(self.max_chain),
            hier,
        }
    }
}

/// Pair-count size class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SizeBucket {
    /// Up to 4 pairs: the exhaustive-seed regime.
    Tiny,
    /// 5–8 pairs: comfortable flat ILP.
    Small,
    /// 9–16 pairs: where the HCLIP seed starts paying off.
    Medium,
    /// 17+ pairs: hierarchical territory.
    Large,
}

impl SizeBucket {
    fn of(pairs: usize) -> SizeBucket {
        match pairs {
            0..=4 => SizeBucket::Tiny,
            5..=8 => SizeBucket::Small,
            9..=16 => SizeBucket::Medium,
            _ => SizeBucket::Large,
        }
    }

    fn name(self) -> &'static str {
        match self {
            SizeBucket::Tiny => "tiny",
            SizeBucket::Small => "small",
            SizeBucket::Medium => "medium",
            SizeBucket::Large => "large",
        }
    }

    fn from_name(name: &str) -> Option<SizeBucket> {
        Some(match name {
            "tiny" => SizeBucket::Tiny,
            "small" => SizeBucket::Small,
            "medium" => SizeBucket::Medium,
            "large" => SizeBucket::Large,
            _ => return None,
        })
    }
}

/// Net-count density class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NetBucket {
    /// Up to 10 nets.
    Sparse,
    /// 11+ nets.
    Dense,
}

impl NetBucket {
    fn of(nets: usize) -> NetBucket {
        if nets <= 10 {
            NetBucket::Sparse
        } else {
            NetBucket::Dense
        }
    }

    fn name(self) -> &'static str {
        match self {
            NetBucket::Sparse => "sparse",
            NetBucket::Dense => "dense",
        }
    }

    fn from_name(name: &str) -> Option<NetBucket> {
        Some(match name {
            "sparse" => NetBucket::Sparse,
            "dense" => NetBucket::Dense,
            _ => return None,
        })
    }
}

/// Series-chain depth class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChainBucket {
    /// Longest and-stack under 3 pairs: clustering has little to merge.
    Shallow,
    /// A 3+ deep stack exists: HCLIP clustering meaningfully shrinks the
    /// model.
    Deep,
}

impl ChainBucket {
    fn of(max_chain: usize) -> ChainBucket {
        if max_chain < 3 {
            ChainBucket::Shallow
        } else {
            ChainBucket::Deep
        }
    }

    fn name(self) -> &'static str {
        match self {
            ChainBucket::Shallow => "shallow",
            ChainBucket::Deep => "deep",
        }
    }

    fn from_name(name: &str) -> Option<ChainBucket> {
        Some(match name {
            "shallow" => ChainBucket::Shallow,
            "deep" => ChainBucket::Deep,
            _ => return None,
        })
    }
}

/// The coarse bucketed key a profile is indexed by.
///
/// Renders as `size-nets-chain-mode`, e.g. `small-sparse-deep-flat`;
/// [`FeatureKey::parse`] is the exact inverse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FeatureKey {
    /// Pair-count size class.
    pub size: SizeBucket,
    /// Net density class.
    pub nets: NetBucket,
    /// Series-chain depth class.
    pub chain: ChainBucket,
    /// True for hierarchical requests.
    pub hier: bool,
}

impl FeatureKey {
    /// Parses the `size-nets-chain-mode` rendering back into a key.
    pub fn parse(text: &str) -> Option<FeatureKey> {
        let mut parts = text.split('-');
        let key = FeatureKey {
            size: SizeBucket::from_name(parts.next()?)?,
            nets: NetBucket::from_name(parts.next()?)?,
            chain: ChainBucket::from_name(parts.next()?)?,
            hier: match parts.next()? {
                "flat" => false,
                "hier" => true,
                _ => return None,
            },
        };
        parts.next().is_none().then_some(key)
    }
}

impl fmt::Display for FeatureKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-{}-{}-{}",
            self.size.name(),
            self.nets.name(),
            self.chain.name(),
            if self.hier { "hier" } else { "flat" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_netlist::library;

    #[test]
    fn known_cells_land_in_expected_buckets() {
        let xor2 = CircuitFeatures::extract(&library::xor2()).unwrap();
        assert_eq!(xor2.pairs, 5);
        assert_eq!(xor2.key(false).size, SizeBucket::Small);

        let nand4 = CircuitFeatures::extract(&library::nand4()).unwrap();
        assert_eq!(nand4.pairs, 4);
        assert_eq!(nand4.max_chain, 4, "nand4 is one 4-deep stack");
        let key = nand4.key(false);
        assert_eq!(key.size, SizeBucket::Tiny);
        assert_eq!(key.chain, ChainBucket::Deep);

        let fa = CircuitFeatures::extract(&library::full_adder()).unwrap();
        assert!(fa.pairs > 8, "full adder is medium-sized");
        assert_eq!(fa.key(false).size, SizeBucket::Medium);

        let mux41 = CircuitFeatures::extract(&library::mux41()).unwrap();
        assert_eq!(mux41.key(true).size, SizeBucket::Large);
    }

    #[test]
    fn keys_render_and_parse_round_trip() {
        for size in [
            SizeBucket::Tiny,
            SizeBucket::Small,
            SizeBucket::Medium,
            SizeBucket::Large,
        ] {
            for nets in [NetBucket::Sparse, NetBucket::Dense] {
                for chain in [ChainBucket::Shallow, ChainBucket::Deep] {
                    for hier in [false, true] {
                        let key = FeatureKey {
                            size,
                            nets,
                            chain,
                            hier,
                        };
                        assert_eq!(FeatureKey::parse(&key.to_string()), Some(key));
                    }
                }
            }
        }
        assert_eq!(FeatureKey::parse("small-sparse-deep"), None);
        assert_eq!(FeatureKey::parse("small-sparse-deep-flat-extra"), None);
        assert_eq!(FeatureKey::parse("huge-sparse-deep-flat"), None);
    }
}
