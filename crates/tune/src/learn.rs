//! Profile learning: aggregates tuner-training records from bench JSONL
//! into a [`TuningProfile`].
//!
//! `clip-bench` emits one JSON object per training run alongside its
//! ordinary measurements, tagged with the circuit's rendered
//! [`FeatureKey`]:
//!
//! ```json
//! {"record": "tune/xor2x2", "feature_key": "small-sparse-deep-flat",
//!  "jobs": 2, "seed": false, "seed_ns": 0, "wall_ns": 31877210,
//!  "winner_strategy": "cbj"}
//! ```
//!
//! [`learn`] scans a JSONL text for such lines (anything without a
//! `feature_key` field — ordinary measurements, trace embeddings — is
//! ignored), groups them by key, and derives per-bucket advice:
//!
//! * **portfolio** — strategies ordered by how often they won, most
//!   frequent first (ties alphabetical), with the never-winning defaults
//!   appended; omitted when no record named a winner;
//! * **jobs** — the observed job count with the lowest mean wall time
//!   (ties toward fewer threads); omitted when no record carried one;
//! * **hclip_seed** — vetoed (`false`) only when runs without the seed
//!   were strictly faster on mean wall time than runs with it;
//! * **seed_slice** — thinned to 6 when the seed stage consumed more
//!   than a quarter of mean wall time (it keeps its warm-start value but
//!   should stop dominating the budget).
//!
//! Everything aggregates through `BTreeMap`s, so the learned profile is
//! a deterministic function of the input text — `clip tune` twice on the
//! same JSONL writes byte-identical profiles.

use std::collections::BTreeMap;

use clip_layout::jsonio::{self, Json};

use crate::features::FeatureKey;
use crate::profile::{ProfileEntry, ProfileError, TuningProfile};

/// The default portfolio order appended after observed winners. Must
/// stay in sync with `clip_pb::portfolio::STRATEGIES` (the sanitizer
/// there drops anything unknown, so drift degrades, never breaks).
const DEFAULT_STRATEGIES: [&str; 3] = ["cbj", "cdcl", "cbj-dyn"];

/// One parsed training record.
struct Record {
    key: String,
    jobs: Option<usize>,
    seed: Option<bool>,
    seed_ns: u64,
    wall_ns: u64,
    winner: Option<String>,
}

/// Learns a [`TuningProfile`] from bench JSONL text.
///
/// Only lines carrying a `feature_key` field are training records; all
/// other lines are skipped. The result is deterministic for a given
/// input text.
///
/// # Errors
///
/// [`ProfileError::Json`] when a line with a `feature_key` is not valid
/// JSON, [`ProfileError::Schema`] when such a line is malformed (e.g.
/// the key does not parse, or `wall_ns` is missing).
pub fn learn(text: &str) -> Result<TuningProfile, ProfileError> {
    let mut by_key: BTreeMap<String, Vec<Record>> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || !line.contains("\"feature_key\"") {
            continue;
        }
        let record = parse_record(line)?;
        by_key.entry(record.key.clone()).or_default().push(record);
    }
    let mut profile = TuningProfile::default();
    for (key, records) in by_key {
        profile.entries.insert(key, derive_entry(&records));
    }
    Ok(profile)
}

fn parse_record(line: &str) -> Result<Record, ProfileError> {
    let schema = |msg: String| ProfileError::Schema(msg);
    let v = jsonio::parse(line)?;
    let key = v
        .get("feature_key")
        .and_then(Json::as_str)
        .ok_or_else(|| schema("`feature_key` must be a string".into()))?
        .to_string();
    if FeatureKey::parse(&key).is_none() {
        return Err(schema(format!("`{key}` is not a feature key")));
    }
    let wall_ns = v
        .get("wall_ns")
        .and_then(Json::as_u64)
        .ok_or_else(|| schema(format!("record for `{key}` is missing `wall_ns`")))?;
    Ok(Record {
        key,
        jobs: v.get("jobs").and_then(Json::as_usize),
        seed: v.get("seed").and_then(Json::as_bool),
        seed_ns: v.get("seed_ns").and_then(Json::as_u64).unwrap_or(0),
        wall_ns,
        winner: v
            .get("winner_strategy")
            .and_then(Json::as_str)
            .map(str::to_string),
    })
}

/// Compares two group means without floats: is `a`'s mean strictly
/// smaller than `b`'s?
fn mean_lt(a: (u128, u128), b: (u128, u128)) -> bool {
    let ((sum_a, n_a), (sum_b, n_b)) = (a, b);
    n_a > 0 && n_b > 0 && sum_a * n_b < sum_b * n_a
}

fn derive_entry(records: &[Record]) -> ProfileEntry {
    // Portfolio: winners by descending frequency (ties alphabetical),
    // then the remaining defaults.
    let mut wins: BTreeMap<&str, usize> = BTreeMap::new();
    for r in records {
        if let Some(w) = &r.winner {
            *wins.entry(w.as_str()).or_default() += 1;
        }
    }
    let portfolio = if wins.is_empty() {
        Vec::new()
    } else {
        let mut ranked: Vec<(&str, usize)> = wins.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mut order: Vec<String> = ranked.into_iter().map(|(s, _)| s.to_string()).collect();
        for s in DEFAULT_STRATEGIES {
            if !order.iter().any(|o| o == s) {
                order.push(s.to_string());
            }
        }
        order
    };

    // Jobs: the observed count with the lowest mean wall time, ties
    // toward fewer threads.
    let mut by_jobs: BTreeMap<usize, (u128, u128)> = BTreeMap::new();
    for r in records {
        if let Some(jobs) = r.jobs {
            let cell = by_jobs.entry(jobs).or_default();
            cell.0 += u128::from(r.wall_ns);
            cell.1 += 1;
        }
    }
    let mut jobs: Option<(usize, (u128, u128))> = None;
    for (j, group) in by_jobs {
        let better = match &jobs {
            None => true,
            Some((_, best)) => mean_lt(group, *best),
        };
        if better {
            jobs = Some((j, group));
        }
    }

    // Seed veto: only when seedless runs were strictly faster on mean.
    let mut with_seed = (0u128, 0u128);
    let mut without_seed = (0u128, 0u128);
    let mut seed_spent = (0u128, 0u128); // (seed_ns sum, wall_ns sum) with seed on
    for r in records {
        match r.seed {
            Some(true) => {
                with_seed.0 += u128::from(r.wall_ns);
                with_seed.1 += 1;
                seed_spent.0 += u128::from(r.seed_ns);
                seed_spent.1 += u128::from(r.wall_ns);
            }
            Some(false) => {
                without_seed.0 += u128::from(r.wall_ns);
                without_seed.1 += 1;
            }
            None => {}
        }
    }
    let hclip_seed = mean_lt(without_seed, with_seed).then_some(false);

    // Slice thinning: the seed kept its value but ate > 1/4 of the wall.
    let seed_slice =
        (hclip_seed.is_none() && seed_spent.1 > 0 && seed_spent.0 * 4 > seed_spent.1).then_some(6);

    ProfileEntry {
        observations: records.len(),
        hclip_seed,
        seed_slice,
        portfolio,
        jobs: jobs.map(|(j, _)| j),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &str = "medium-dense-deep-flat";

    fn line(jobs: usize, seed: bool, seed_ns: u64, wall_ns: u64, winner: &str) -> String {
        format!(
            r#"{{"record":"tune/x","feature_key":"{KEY}","jobs":{jobs},"seed":{seed},"seed_ns":{seed_ns},"wall_ns":{wall_ns},"winner_strategy":"{winner}"}}"#
        )
    }

    #[test]
    fn learns_portfolio_jobs_and_seed_advice() {
        let text = [
            line(1, true, 50, 1000, "cdcl"),
            line(1, true, 60, 1100, "cdcl"),
            line(2, false, 0, 400, "cbj"),
            line(2, false, 0, 500, "cdcl"),
            "not a training line".to_string(),
            r#"{"record":"measurement","cell":"xor2","wall_ns":1}"#.to_string(),
        ]
        .join("\n");
        let profile = learn(&text).unwrap();
        assert_eq!(profile.len(), 1);
        let entry = &profile.entries[KEY];
        assert_eq!(entry.observations, 4);
        // cdcl won 3, cbj 1; cbj-dyn never won but is appended.
        assert_eq!(entry.portfolio, vec!["cdcl", "cbj", "cbj-dyn"]);
        // jobs=2 runs averaged faster.
        assert_eq!(entry.jobs, Some(2));
        // Seedless runs were strictly faster: veto.
        assert_eq!(entry.hclip_seed, Some(false));
        assert_eq!(entry.seed_slice, None, "veto subsumes slice thinning");
    }

    #[test]
    fn seed_slice_thins_when_the_seed_dominates() {
        // The seed pays off (seeded runs faster) but eats half the wall.
        let text = [
            line(1, true, 500, 1000, "cbj"),
            line(1, false, 0, 2000, "cbj"),
        ]
        .join("\n");
        let entry = &learn(&text).unwrap().entries[KEY];
        assert_eq!(entry.hclip_seed, None);
        assert_eq!(entry.seed_slice, Some(6));
    }

    #[test]
    fn learning_is_deterministic_and_ties_break_small() {
        let text = [line(4, true, 0, 1000, "cbj"), line(2, true, 0, 1000, "cbj")].join("\n");
        let a = learn(&text).unwrap();
        let b = learn(&text).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        // Equal means: the smaller job count wins.
        assert_eq!(a.entries[KEY].jobs, Some(2));
    }

    #[test]
    fn empty_and_recordless_inputs_learn_empty_profiles() {
        assert!(learn("").unwrap().is_empty());
        assert!(learn("{\"cell\":\"xor2\"}\n\n").unwrap().is_empty());
    }

    #[test]
    fn malformed_training_lines_are_rejected() {
        assert!(matches!(
            learn(r#"{"feature_key": "medium-dense-deep-flat""#),
            Err(ProfileError::Json(_))
        ));
        assert!(matches!(
            learn(r#"{"feature_key": "blurp"}"#),
            Err(ProfileError::Schema(_))
        ));
        assert!(matches!(
            learn(r#"{"feature_key": "medium-dense-deep-flat"}"#),
            Err(ProfileError::Schema(_))
        ));
    }

    #[test]
    fn learned_profiles_round_trip_and_yield_plans() {
        let text = [
            line(2, true, 10, 800, "cdcl"),
            line(1, false, 0, 700, "cbj"),
        ]
        .join("\n");
        let profile = learn(&text).unwrap();
        let back = TuningProfile::parse(&profile.to_json()).unwrap();
        assert_eq!(back, profile);
        let key = FeatureKey::parse(KEY).unwrap();
        let plan = back.plan_for(&key);
        assert!(!plan.is_default());
        assert_eq!(plan.source.as_deref(), Some(KEY));
    }
}
