//! Trace-driven autotuning for the CLIP pipeline.
//!
//! The generation pipeline exposes a handful of speed levers — whether
//! the HCLIP warm-start seed is worth its budget slice, how the solver
//! portfolio is composed, how wide to fan out — whose best settings
//! depend on the *shape* of the circuit being synthesized. This crate
//! closes the loop over the observability the pipeline already has:
//!
//! 1. [`features`] distills a circuit into a coarse [`FeatureKey`]
//!    (size, net density, series-chain depth, flat vs. hierarchical);
//! 2. [`learn()`] aggregates historical bench JSONL — the tuner-training
//!    records `clip-bench` emits alongside its measurements — into a
//!    persisted, schema-versioned [`TuningProfile`];
//! 3. [`profile`] looks a request's key up in the profile and distills
//!    the matching entry into a `clip_core::tuning::TuningPlan`
//!    ([`TuningProfile::plan_for`]), falling back to the hardcoded
//!    defaults when nothing matches.
//!
//! The CLI drives the loop end to end: `clip tune results.jsonl -o
//! profile.json` learns a profile, `clip synth --profile profile.json`
//! applies it. Plans change *speed only, never results* — see
//! `clip_core::tuning` for the constraints on each lever, and the
//! pinned determinism tests in the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod learn;
pub mod profile;

pub use features::{ChainBucket, CircuitFeatures, FeatureKey, NetBucket, SizeBucket};
pub use learn::learn;
pub use profile::{ProfileEntry, ProfileError, TuningProfile, PROFILE_SCHEMA};
