//! The persisted tuning profile: a schema-versioned JSON store mapping
//! [`FeatureKey`]s to learned per-bucket advice, and the policy that
//! distills an entry into a `clip_core` [`TuningPlan`].
//!
//! On-disk layout (pretty-printed by [`TuningProfile::to_json`]):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "entries": {
//!     "medium-dense-deep-flat": {
//!       "observations": 12,
//!       "hclip_seed": false,
//!       "seed_slice": 6,
//!       "portfolio": ["cbj", "cdcl"],
//!       "jobs": 4
//!     }
//!   }
//! }
//! ```
//!
//! Every field inside an entry except `observations` is optional advice:
//! an absent field (or an empty `portfolio`) leaves the corresponding
//! lever on its hardcoded default. [`TuningProfile::plan_for`] returns
//! the default plan when the key has no entry at all — an unknown
//! circuit shape is synthesized exactly as if no profile existed.

use std::collections::BTreeMap;
use std::fmt;
use std::num::NonZeroUsize;

use clip_core::tuning::TuningPlan;
use clip_layout::jsonio::{self, Json, JsonError};

use crate::features::FeatureKey;

/// The profile schema version this crate reads and writes.
pub const PROFILE_SCHEMA: i64 = 1;

/// A profile load failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ProfileError {
    /// The text is not valid JSON.
    Json(JsonError),
    /// The JSON does not match the profile schema.
    Schema(String),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Json(e) => write!(f, "profile: {e}"),
            ProfileError::Schema(msg) => write!(f, "profile schema: {msg}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<JsonError> for ProfileError {
    fn from(e: JsonError) -> Self {
        ProfileError::Json(e)
    }
}

/// Learned advice for one feature bucket.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileEntry {
    /// How many training records backed this entry.
    pub observations: usize,
    /// Whether the HCLIP seed stage paid off (`Some(false)` vetoes it).
    pub hclip_seed: Option<bool>,
    /// Budget slice divisor for the seed stage (larger = thinner slice).
    pub seed_slice: Option<u32>,
    /// Portfolio strategy labels, most promising first. Empty = no
    /// advice (the pipeline keeps its default order).
    pub portfolio: Vec<String>,
    /// Worker-thread default for this bucket.
    pub jobs: Option<usize>,
}

/// A keyed store of [`ProfileEntry`]s, serializable to JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TuningProfile {
    /// Entries by rendered [`FeatureKey`]. A `BTreeMap` keeps the
    /// serialized form (and everything learned from it) deterministic.
    pub entries: BTreeMap<String, ProfileEntry>,
}

impl TuningProfile {
    /// True when no bucket has any advice.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of buckets with advice.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Distills the entry matching `key` into a [`TuningPlan`], stamped
    /// with the key as its source. Returns the default plan — synthesize
    /// exactly as if no profile existed — when the key has no entry.
    pub fn plan_for(&self, key: &FeatureKey) -> TuningPlan {
        let name = key.to_string();
        let Some(entry) = self.entries.get(&name) else {
            return TuningPlan::default();
        };
        let plan = TuningPlan {
            hclip_seed: entry.hclip_seed,
            seed_slice: entry.seed_slice,
            portfolio: (!entry.portfolio.is_empty()).then(|| entry.portfolio.clone()),
            jobs: entry.jobs.and_then(NonZeroUsize::new),
            source: None,
        };
        if plan.is_default() {
            // An entry with no advice must not stamp traces.
            return TuningPlan::default();
        }
        plan.with_source(name)
    }

    /// Serializes the profile as a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let entries: Vec<(String, Json)> = self
            .entries
            .iter()
            .map(|(key, e)| {
                let mut pairs: Vec<(String, Json)> =
                    vec![("observations".into(), Json::Int(e.observations as i64))];
                if let Some(seed) = e.hclip_seed {
                    pairs.push(("hclip_seed".into(), Json::Bool(seed)));
                }
                if let Some(slice) = e.seed_slice {
                    pairs.push(("seed_slice".into(), Json::Int(i64::from(slice))));
                }
                if !e.portfolio.is_empty() {
                    pairs.push((
                        "portfolio".into(),
                        Json::arr(&e.portfolio, |s| Json::Str(s.clone())),
                    ));
                }
                if let Some(jobs) = e.jobs {
                    pairs.push(("jobs".into(), Json::Int(jobs as i64)));
                }
                (key.clone(), Json::Obj(pairs))
            })
            .collect();
        Json::obj([
            ("schema", Json::Int(PROFILE_SCHEMA)),
            ("entries", Json::Obj(entries)),
        ])
        .to_pretty()
    }

    /// Parses a serialized profile document.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Json`] on malformed JSON, [`ProfileError::Schema`]
    /// on a well-formed document that is not a supported profile.
    pub fn parse(text: &str) -> Result<TuningProfile, ProfileError> {
        let v = jsonio::parse(text)?;
        let schema = |msg: String| ProfileError::Schema(msg);
        let version = v
            .get("schema")
            .and_then(Json::as_i64)
            .ok_or_else(|| schema("missing integer `schema`".into()))?;
        if version != PROFILE_SCHEMA {
            return Err(schema(format!(
                "unsupported profile schema version {version} (supported: {PROFILE_SCHEMA})"
            )));
        }
        let Some(Json::Obj(pairs)) = v.get("entries") else {
            return Err(schema("missing object `entries`".into()));
        };
        let mut entries = BTreeMap::new();
        for (key, e) in pairs {
            if FeatureKey::parse(key).is_none() {
                return Err(schema(format!("`{key}` is not a feature key")));
            }
            let opt_field = |name: &str| e.get(name).cloned();
            let entry = ProfileEntry {
                observations: e
                    .get("observations")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| schema(format!("`{key}`: missing `observations`")))?,
                hclip_seed: match opt_field("hclip_seed") {
                    None => None,
                    Some(f) => Some(f.as_bool().ok_or_else(|| {
                        schema(format!("`{key}`: `hclip_seed` must be a boolean"))
                    })?),
                },
                seed_slice: match opt_field("seed_slice") {
                    None => None,
                    Some(f) => Some(f.as_u64().and_then(|v| u32::try_from(v).ok()).ok_or_else(
                        || schema(format!("`{key}`: `seed_slice` must be a small integer")),
                    )?),
                },
                portfolio: match opt_field("portfolio") {
                    None => Vec::new(),
                    Some(f) => f
                        .as_arr()
                        .ok_or_else(|| schema(format!("`{key}`: `portfolio` must be an array")))?
                        .iter()
                        .map(|s| {
                            s.as_str().map(str::to_string).ok_or_else(|| {
                                schema(format!("`{key}`: `portfolio` entries must be strings"))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                },
                jobs: match opt_field("jobs") {
                    None => None,
                    Some(f) => Some(f.as_usize().ok_or_else(|| {
                        schema(format!("`{key}`: `jobs` must be a non-negative integer"))
                    })?),
                },
            };
            entries.insert(key.clone(), entry);
        }
        Ok(TuningProfile { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{ChainBucket, NetBucket, SizeBucket};

    fn key() -> FeatureKey {
        FeatureKey {
            size: SizeBucket::Medium,
            nets: NetBucket::Dense,
            chain: ChainBucket::Deep,
            hier: false,
        }
    }

    #[test]
    fn profile_round_trips_through_json() {
        let mut profile = TuningProfile::default();
        profile.entries.insert(
            key().to_string(),
            ProfileEntry {
                observations: 12,
                hclip_seed: Some(false),
                seed_slice: Some(6),
                portfolio: vec!["cdcl".into(), "cbj".into()],
                jobs: Some(4),
            },
        );
        profile.entries.insert(
            "tiny-sparse-shallow-flat".into(),
            ProfileEntry {
                observations: 3,
                ..ProfileEntry::default()
            },
        );
        let text = profile.to_json();
        assert!(text.contains("\"schema\": 1"), "{text}");
        let back = TuningProfile::parse(&text).unwrap();
        assert_eq!(back, profile);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn plan_for_distills_matches_and_defaults_on_misses() {
        let mut profile = TuningProfile::default();
        profile.entries.insert(
            key().to_string(),
            ProfileEntry {
                observations: 5,
                hclip_seed: Some(false),
                seed_slice: None,
                portfolio: vec!["cdcl".into()],
                jobs: Some(2),
            },
        );
        let plan = profile.plan_for(&key());
        assert_eq!(plan.hclip_seed, Some(false));
        assert_eq!(plan.portfolio.as_deref(), Some(&["cdcl".to_string()][..]));
        assert_eq!(plan.jobs, NonZeroUsize::new(2));
        assert_eq!(plan.source.as_deref(), Some("medium-dense-deep-flat"));
        // A missing key yields the untouched default plan.
        let miss = FeatureKey {
            hier: true,
            ..key()
        };
        assert!(profile.plan_for(&miss).is_default());
        // `jobs: 0` in a (hand-edited) profile is ignored, not a panic.
        profile.entries.get_mut(&key().to_string()).unwrap().jobs = Some(0);
        assert_eq!(profile.plan_for(&key()).jobs, None);
    }

    #[test]
    fn adviceless_entries_yield_the_default_plan() {
        let mut profile = TuningProfile::default();
        profile.entries.insert(
            key().to_string(),
            ProfileEntry {
                observations: 9,
                ..ProfileEntry::default()
            },
        );
        let plan = profile.plan_for(&key());
        assert!(plan.is_default());
        assert_eq!(plan.source, None, "no advice: no trace stamp");
    }

    #[test]
    fn malformed_profiles_are_rejected() {
        assert!(matches!(
            TuningProfile::parse("nope"),
            Err(ProfileError::Json(_))
        ));
        assert!(matches!(
            TuningProfile::parse("{}"),
            Err(ProfileError::Schema(_))
        ));
        let err = TuningProfile::parse(r#"{"schema":9,"entries":{}}"#).unwrap_err();
        assert!(
            matches!(&err, ProfileError::Schema(m) if m.contains('9')),
            "{err}"
        );
        assert!(matches!(
            TuningProfile::parse(r#"{"schema":1,"entries":{"bogus-key":{"observations":1}}}"#),
            Err(ProfileError::Schema(_))
        ));
        assert!(matches!(
            TuningProfile::parse(
                r#"{"schema":1,"entries":{"tiny-sparse-shallow-flat":{"observations":-1}}}"#
            ),
            Err(ProfileError::Schema(_))
        ));
    }
}
