//! CLIP — an optimizing layout generator for two-dimensional CMOS cells.
//!
//! A reproduction of Gupta & Hayes (DAC 1997): CMOS leaf cells are
//! synthesized by a 0-1 ILP that simultaneously decides each P/N pair's
//! row, slot, orientation, and diffusion sharing, minimizing cell width
//! (CLIP-W) or width-then-routing-tracks (CLIP-WH); HCLIP and-stack
//! clustering scales the method to larger cells.
//!
//! This facade re-exports every subsystem crate. See the README for an
//! overview, `DESIGN.md` for the architecture, and `examples/` for
//! runnable entry points.
//!
//! # Example
//!
//! ```
//! use clip::core::generator::{CellGenerator, GenOptions};
//! use clip::netlist::library;
//!
//! // The paper's Fig. 2 multiplexer, placed optimally in three rows.
//! let cell = CellGenerator::new(GenOptions::rows(3)).generate(library::mux21())?;
//! assert_eq!(cell.width, 3); // Table 3: the mux is 3 pitches wide in 3 rows
//! assert!(cell.optimal);
//! # Ok::<(), clip::core::generator::GenError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Heuristic baselines (the Virtuoso comparator substitute).
pub use clip_baselines as baselines;
/// Benchmark harness: timing, corpus driver, regression gate.
pub use clip_bench as bench;
/// The CLIP models: CLIP-W, CLIP-WH, HCLIP, hierarchy, verification.
pub use clip_core as core;
/// Seeded, stratified netlist corpus generation.
pub use clip_corpus as corpus;
/// Symbolic layout assembly, ASCII/SVG rendering, JSON export.
pub use clip_layout as layout;
/// Circuits, pairing, expression compiler, simulator, benchmark library.
pub use clip_netlist as netlist;
/// The 0-1 ILP (pseudo-Boolean) solver.
pub use clip_pb as pb;
/// Track density, net spans, channel routing.
pub use clip_route as route;
/// The batch synthesis daemon: wire protocol, memo cache, fault sites.
pub use clip_serve as serve;
/// Trace-driven autotuning: circuit features, learned profiles, plans.
pub use clip_tune as tune;
