//! `clip` — command-line cell synthesis.
//!
//! ```text
//! clip cells                              list the built-in library
//! clip synth --cell mux21 --rows 3        synthesize a library cell
//! clip synth --expr "(a&b|c)'" --rows 2 --height --svg out.svg
//! clip synth --cell nand4 --rows 2 --pareto    emit the objective frontier
//! clip synth --spice cell.sp --stacking --json out.json
//! clip tune results/bench.jsonl -o profile.json   learn a tuning profile
//! clip synth --cell xor2 --profile profile.json   synthesize with it
//! ```

use std::num::NonZeroUsize;
use std::process::ExitCode;
use std::time::Duration;

use clip::core::request::SynthRequest;
use clip::core::tuning::TuningPlan;
use clip::core::ObjectiveSpec;
use clip::layout::CellLayout;
use clip::netlist::fold::fold_uniform;
use clip::netlist::{library, spice, Circuit, Expr};
use clip::serve::daemon::{Bind, ServeConfig, Server};
use clip::tune::{learn, CircuitFeatures, TuningProfile};

struct SynthArgs {
    circuit: Option<Circuit>,
    rows: usize,
    auto_rows: bool,
    stacking: bool,
    height: bool,
    pareto: bool,
    objective: Option<String>,
    track_pitch: Option<usize>,
    diffusion_overhead: Option<usize>,
    rail_overhead: Option<usize>,
    interrow_weight: Option<i64>,
    limit: Duration,
    fold: usize,
    jobs: Option<NonZeroUsize>,
    svg: Option<String>,
    json: Option<String>,
    cif: Option<String>,
    trace: Option<String>,
    critical: Vec<String>,
    profile: Option<String>,
    no_theories: bool,
    classic_search: bool,
    quiet: bool,
}

impl Default for SynthArgs {
    fn default() -> Self {
        SynthArgs {
            circuit: None,
            rows: 1,
            auto_rows: false,
            stacking: false,
            height: false,
            pareto: false,
            objective: None,
            track_pitch: None,
            diffusion_overhead: None,
            rail_overhead: None,
            interrow_weight: None,
            limit: Duration::from_secs(60),
            fold: 1,
            jobs: None,
            svg: None,
            json: None,
            cif: None,
            trace: None,
            critical: Vec::new(),
            profile: None,
            no_theories: false,
            classic_search: false,
            quiet: false,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("cells") => cells(),
        Some("synth") => match parse_synth(&args[1..]) {
            Ok(a) => synth(a),
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                ExitCode::from(2)
            }
        },
        Some("tune") => match parse_tune(&args[1..]) {
            Ok((input, out)) => tune(&input, &out),
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                ExitCode::from(2)
            }
        },
        Some("bench") => match parse_bench(&args[1..]) {
            Ok((opts, summary)) => bench_corpus(&opts, summary.as_deref()),
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                ExitCode::from(2)
            }
        },
        Some("serve") => match parse_serve(&args[1..]) {
            Ok((config, port_file)) => serve(config, port_file.as_deref()),
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                ExitCode::from(2)
            }
        },
        Some("help") | None => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command {other}");
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage:\n  clip cells\n  clip synth (--cell NAME | --expr FORMULA | --spice FILE) \
         [--rows N|auto] [--stacking]\n             [--limit SECS] [--fold K] \
         [--jobs N] [--profile FILE]\n             [--svg FILE] \
         [--json FILE] [--cif FILE] [--trace FILE] [--no-theories] [--classic-search] [--quiet]\n    \
         objective options:\n             [--height] [--objective \
         width|width-height|height-width|weighted:W:H]\n             [--track-pitch N] \
         [--diffusion-overhead N] [--rail-overhead N]\n             [--interrow-weight W] \
         [--critical NET]... [--pareto]\n  clip tune INPUT.jsonl \
         [-o FILE]     learn a tuning profile from bench JSONL\n  clip bench --corpus \
         --checkpoint FILE [--seed N] [--cells N] [--shards N]\n             [--budget SECS] \
         [--summary FILE] [--quiet]   sharded, resumable corpus run\n  clip serve \
         [--listen HOST:PORT | --unix PATH] [--workers N] [--queue N]\n             \
         [--per-conn N] [--cache FILE] [--cache-cap N] [--port-file FILE] [--quiet]    \
         batch synthesis daemon"
    );
}

fn cells() -> ExitCode {
    println!("{:<14} {:>6} {:>6}  inputs", "cell", "trans", "pairs");
    for c in library::evaluation_suite()
        .into_iter()
        .chain(library::extended_suite())
    {
        let name = c.name().to_owned();
        let trans = c.devices().len();
        let inputs: Vec<String> = c
            .inputs()
            .iter()
            .map(|&n| c.nets().name(n).to_owned())
            .collect();
        let pairs = c.into_paired().map(|p| p.len()).unwrap_or(0);
        println!("{name:<14} {trans:>6} {pairs:>6}  {}", inputs.join(","));
    }
    ExitCode::SUCCESS
}

fn parse_synth(args: &[String]) -> Result<SynthArgs, String> {
    let mut out = SynthArgs::default();
    let mut i = 0;
    let take = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--cell" => {
                let name = take(&mut i)?;
                let circuit = library::evaluation_suite()
                    .into_iter()
                    .chain(library::extended_suite())
                    .find(|c| c.name() == name)
                    .ok_or_else(|| format!("unknown cell {name} (see `clip cells`)"))?;
                out.circuit = Some(circuit);
            }
            "--expr" => {
                let formula = take(&mut i)?;
                let expr = Expr::parse(&formula).map_err(|e| e.to_string())?;
                out.circuit = Some(expr.compile("custom", "z").map_err(|e| e.to_string())?);
            }
            "--spice" => {
                let path = take(&mut i)?;
                let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                out.circuit = Some(spice::parse("imported", &text).map_err(|e| e.to_string())?);
            }
            "--rows" => {
                let v = take(&mut i)?;
                if v == "auto" {
                    out.auto_rows = true;
                    out.rows = 4;
                } else {
                    out.rows = v.parse().map_err(|_| "bad --rows")?;
                }
            }
            "--limit" => {
                out.limit = Duration::from_secs(take(&mut i)?.parse().map_err(|_| "bad --limit")?)
            }
            "--fold" => out.fold = take(&mut i)?.parse().map_err(|_| "bad --fold")?,
            "--jobs" => {
                out.jobs = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|_| "bad --jobs (need N >= 1)")?,
                )
            }
            "--stacking" => out.stacking = true,
            "--height" => out.height = true,
            "--pareto" => out.pareto = true,
            "--objective" => {
                let name = take(&mut i)?;
                if ObjectiveSpec::parse_ordering(&name).is_none() {
                    return Err(format!(
                        "bad --objective {name} (want width, width-height, \
                         height-width, or weighted:W:H)"
                    ));
                }
                out.objective = Some(name);
            }
            "--track-pitch" => {
                out.track_pitch = Some(take(&mut i)?.parse().map_err(|_| "bad --track-pitch")?)
            }
            "--diffusion-overhead" => {
                out.diffusion_overhead = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|_| "bad --diffusion-overhead")?,
                )
            }
            "--rail-overhead" => {
                out.rail_overhead = Some(take(&mut i)?.parse().map_err(|_| "bad --rail-overhead")?)
            }
            "--interrow-weight" => {
                out.interrow_weight =
                    Some(take(&mut i)?.parse().map_err(|_| "bad --interrow-weight")?)
            }
            "--no-theories" => out.no_theories = true,
            "--classic-search" => out.classic_search = true,
            "--quiet" => out.quiet = true,
            "--critical" => out.critical.push(take(&mut i)?),
            "--svg" => out.svg = Some(take(&mut i)?),
            "--json" => out.json = Some(take(&mut i)?),
            "--cif" => out.cif = Some(take(&mut i)?),
            "--trace" => out.trace = Some(take(&mut i)?),
            "--profile" => out.profile = Some(take(&mut i)?),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if out.circuit.is_none() {
        return Err("one of --cell/--expr/--spice is required".into());
    }
    if out.fold == 0 {
        return Err("--fold must be positive".into());
    }
    if out.pareto && out.auto_rows {
        return Err("--pareto runs at a fixed row count; drop --rows auto".into());
    }
    Ok(out)
}

/// Consolidates the CLI's objective flags into one [`ObjectiveSpec`].
/// With no objective flags given this is exactly the default spec, so
/// pre-existing invocations keep their behavior bit-for-bit.
fn objective_from_args(args: &SynthArgs) -> ObjectiveSpec {
    let mut spec = if args.height {
        ObjectiveSpec::width_height()
    } else {
        ObjectiveSpec::width()
    };
    if let Some(name) = &args.objective {
        spec = spec
            .with_ordering_name(name)
            .expect("validated in parse_synth");
    }
    if let Some(p) = args.track_pitch {
        spec.track_pitch = p;
    }
    if let Some(d) = args.diffusion_overhead {
        spec.diffusion_overhead = d;
    }
    if let Some(r) = args.rail_overhead {
        spec.rail_overhead = r;
    }
    if let Some(w) = args.interrow_weight {
        spec.interrow_weight = w;
    }
    spec.critical_nets = args.critical.clone();
    spec
}

fn synth(mut args: SynthArgs) -> ExitCode {
    let mut circuit = args.circuit.take().expect("validated");
    if args.fold > 1 {
        match circuit.into_paired() {
            Ok(paired) => match fold_uniform(&paired, args.fold) {
                Ok(folded) => circuit = folded.circuit().clone(),
                Err(e) => {
                    eprintln!("error: folding failed: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Distill a tuning plan from the profile (if any) before the circuit
    // moves into the request. An unknown shape gets the default plan, so
    // a stale profile can only cost speed, never change results.
    let mut plan = TuningPlan::default();
    if let Some(path) = &args.profile {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let profile = match TuningProfile::parse(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(features) = CircuitFeatures::extract(&circuit) {
            plan = profile.plan_for(&features.key(false));
        }
    }

    let mut request = SynthRequest::new(circuit)
        .rows(args.rows)
        .time_limit(args.limit)
        .profile(plan)
        .objective(objective_from_args(&args));
    if args.stacking {
        request = request.stacking();
    }
    if args.no_theories {
        // Escape hatch for bisecting the typed constraint-theory engines:
        // identical placements and traces, generic slack propagation only.
        request = request.no_theories();
    }
    if args.classic_search {
        // Escape hatch for bisecting the modern CDCL engine core (EVSIDS
        // branching, Luby restarts, learned-DB deletion): identical
        // placements and proved optima, classic search loop only.
        request = request.classic_search();
    }
    if let Some(jobs) = args.jobs {
        request = request.jobs(jobs);
    }
    if args.auto_rows {
        request = request.best_area(args.rows);
    }
    if args.pareto {
        // An empty spec list asks for the default sweep over the base
        // objective built from the flags above.
        request = request.pareto(Vec::new());
    }
    let result = match request.build() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.quiet && !result.applied.plan.is_default() {
        println!("tuning: {}", result.applied.plan);
    }
    let cell = result.cell;
    let layout = CellLayout::build(&cell);

    if let Some(pareto) = &result.pareto {
        // The frontier table prints even under --quiet: it is the whole
        // point of a --pareto run, and its bytes are deterministic
        // across worker counts (unlike the timing chatter below).
        println!("{}", pareto.render());
    }
    if !args.quiet {
        println!(
            "{}: width {} pitches, height {} units ({} tracks), {} inter-row nets",
            layout.name,
            cell.width,
            cell.height,
            cell.tracks.iter().sum::<usize>(),
            cell.inter_row_nets
        );
        println!(
            "solve: {:?} ({}), model {} vars / {} constraints, {} nodes",
            cell.stats.duration,
            if cell.optimal {
                "proved optimal"
            } else {
                "best found"
            },
            cell.model_vars,
            cell.model_constraints,
            cell.stats.nodes
        );
        println!("\npipeline:\n{}", cell.trace.render());
        println!("{}", layout.render());
    }
    if let Some(path) = args.svg {
        if let Err(e) = std::fs::write(&path, layout.to_svg()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.json {
        if let Err(e) = std::fs::write(&path, layout.to_json()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.cif {
        if let Err(e) = std::fs::write(&path, layout.to_cif()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.trace {
        if let Err(e) = std::fs::write(&path, clip::layout::trace::to_json(&cell.trace)) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn parse_bench(
    args: &[String],
) -> Result<(clip::bench::corpus::CorpusOptions, Option<String>), String> {
    let mut corpus = false;
    let mut checkpoint: Option<String> = None;
    let mut summary: Option<String> = None;
    let mut opts = clip::bench::corpus::CorpusOptions::new("");
    let mut i = 0;
    let take = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--corpus" => corpus = true,
            "--checkpoint" => checkpoint = Some(take(&mut i)?),
            "--summary" => summary = Some(take(&mut i)?),
            "--seed" => opts.seed = take(&mut i)?.parse().map_err(|_| "bad --seed")?,
            "--cells" => opts.cells = take(&mut i)?.parse().map_err(|_| "bad --cells")?,
            "--shards" => {
                opts.shards = take(&mut i)?
                    .parse()
                    .map_err(|_| "bad --shards (need N >= 1)")?
            }
            "--budget" => {
                opts.budget =
                    Duration::from_secs(take(&mut i)?.parse().map_err(|_| "bad --budget")?)
            }
            "--quiet" => opts.progress = false,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if !corpus {
        return Err("bench requires --corpus (the only bench mode so far)".into());
    }
    opts.checkpoint = checkpoint
        .ok_or("--checkpoint FILE is required (the resumable JSONL)")?
        .into();
    if opts.cells == 0 {
        return Err("--cells must be positive".into());
    }
    Ok((opts, summary))
}

fn bench_corpus(opts: &clip::bench::corpus::CorpusOptions, summary_path: Option<&str>) -> ExitCode {
    let summary = match clip::bench::corpus::run(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.checkpoint.display());
            return ExitCode::FAILURE;
        }
    };
    println!("corpus: {summary}");
    for v in &summary.violations {
        eprintln!("violation: {v}");
    }
    if let Some(path) = summary_path {
        if let Err(e) = std::fs::write(path, summary.to_json().to_pretty()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if summary.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse_serve(args: &[String]) -> Result<(ServeConfig, Option<String>), String> {
    let mut config = ServeConfig {
        quiet: false,
        ..ServeConfig::default()
    };
    let mut listen: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut i = 0;
    let take = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => listen = Some(take(&mut i)?),
            "--unix" => unix = Some(take(&mut i)?),
            "--workers" => {
                config.workers = take(&mut i)?
                    .parse()
                    .map_err(|_| "bad --workers (need N >= 1)")?
            }
            "--queue" => {
                config.queue_cap = take(&mut i)?.parse().map_err(|_| "bad --queue")?;
                if config.queue_cap == 0 {
                    return Err("--queue must be positive".into());
                }
            }
            "--per-conn" => {
                // 0 is legal: it disables the fairness cap explicitly.
                config.per_conn_cap = take(&mut i)?
                    .parse()
                    .map_err(|_| "bad --per-conn (need N >= 0)")?;
            }
            "--cache" => config.cache_path = Some(take(&mut i)?.into()),
            "--cache-cap" => {
                let cap: usize = take(&mut i)?
                    .parse()
                    .map_err(|_| "bad --cache-cap (need N >= 1)")?;
                if cap == 0 {
                    return Err("--cache-cap must be positive".into());
                }
                config.cache_cap = Some(cap);
            }
            "--port-file" => port_file = Some(take(&mut i)?),
            "--quiet" => config.quiet = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    config.bind = match (listen, unix) {
        (Some(_), Some(_)) => return Err("give --listen or --unix, not both".into()),
        (None, Some(path)) => Bind::Unix(path.into()),
        (Some(addr), None) => Bind::Tcp(addr),
        // Loopback with an OS-assigned port: safe default for a daemon
        // (never exposed beyond the host unless asked).
        (None, None) => Bind::Tcp("127.0.0.1:0".into()),
    };
    Ok((config, port_file))
}

fn serve(config: ServeConfig, port_file: Option<&str>) -> ExitCode {
    let quiet = config.quiet;
    clip::serve::signals::install();
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: serve failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_display();
    // Scripts (CI, tests) discover the bound address either from this
    // line or from the port file; both land before the first accept.
    println!("clip-serve listening on {addr}");
    let _ = std::io::Write::flush(&mut std::io::stdout());
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(path, format!("{addr}\n")) {
            eprintln!("error: cannot write --port-file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => {
            if !quiet {
                println!("clip-serve drained and stopped");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: serve terminated: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_tune(args: &[String]) -> Result<(String, String), String> {
    let mut input: Option<String> = None;
    let mut out = "profile.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| format!("{} needs a value", args[i - 1]))?;
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => {
                if input.replace(path.to_string()).is_some() {
                    return Err("tune takes exactly one INPUT.jsonl".into());
                }
            }
        }
        i += 1;
    }
    Ok((input.ok_or("tune needs an INPUT.jsonl argument")?, out))
}

fn tune(input: &str, out: &str) -> ExitCode {
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profile = match learn(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if profile.is_empty() {
        eprintln!("warning: {input} holds no training records (lines with \"feature_key\")");
    }
    if let Err(e) = std::fs::write(out, profile.to_json()) {
        eprintln!("error: {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "learned {} bucket(s) from {input}; wrote {out}",
        profile.len()
    );
    ExitCode::SUCCESS
}
